package metrics

import (
	"sync"

	"tcast/internal/sketch"
)

// summaryQuantiles are the quantile points a Summary exposes on dumps —
// the conventional p50/p90/p99 monitoring set.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// Summary is a sketch-backed quantile metric: a mergeable relative-error
// quantile sketch (constant memory in the observation count) paired with
// exact streaming moments for count/sum/min/max. Unlike Histogram, a
// Summary needs no pre-chosen bucket bounds — it tracks any value range
// at a fixed relative accuracy — and two summaries over the same
// observations always expose identical quantile estimates regardless of
// observation order.
//
// Observe takes a mutex (the sketch's bucket map is not lock-free), so
// summaries belong on per-session/per-trial paths, not per-poll hot
// loops; the obs plane observes one value per session verdict.
type Summary struct {
	mu  sync.Mutex
	q   *sketch.Quantile
	mom sketch.Moments
}

func newSummary(alpha float64) *Summary {
	return &Summary{q: sketch.NewQuantile(alpha)}
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.q.Observe(v)
	s.mom.Observe(v)
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Count()
}

// Merge folds a standalone sketch pair into the summary — the path
// per-worker sketches take to surface on the registry.
func (s *Summary) Merge(q *sketch.Quantile, mom sketch.Moments) {
	s.mu.Lock()
	s.q.Merge(q)
	s.mom.Merge(mom)
	s.mu.Unlock()
}

// snapshotValue captures the summary for exposition.
func (s *Summary) snapshotValue(name string) SummaryValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := SummaryValue{
		Name:  name,
		Count: s.q.Count(),
		Sum:   s.mom.Sum,
		Min:   s.mom.Min,
		Max:   s.mom.Max,
	}
	if sv.Count > 0 {
		sv.Quantiles = make([]QuantilePoint, len(summaryQuantiles))
		for i, p := range summaryQuantiles {
			sv.Quantiles[i] = QuantilePoint{Q: p, Value: s.q.Value(p)}
		}
	}
	return sv
}

// QuantilePoint is one estimated quantile in a summary snapshot.
type QuantilePoint struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// SummaryValue is one summary in a snapshot.
type SummaryValue struct {
	Name      string          `json:"name"`
	Count     uint64          `json:"count"`
	Sum       float64         `json:"sum"`
	Min       float64         `json:"min"`
	Max       float64         `json:"max"`
	Quantiles []QuantilePoint `json:"quantiles,omitempty"`
}

// Summary returns the summary with the given name, creating it at the
// sketch's default relative accuracy on first use.
func (r *Registry) Summary(base string, labels ...string) *Summary {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = newSummary(sketch.DefaultAlpha)
		r.summaries[name] = s
	}
	return s
}
