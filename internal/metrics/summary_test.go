package metrics

import (
	"math"
	"strings"
	"testing"

	"tcast/internal/sketch"
)

func TestSummaryObserveAndSnapshot(t *testing.T) {
	r := New()
	s := r.Summary("session_slots", "alg", "2tbins")
	if r.Summary("session_slots", "alg", "2tbins") != s {
		t.Fatalf("Summary did not return the same handle")
	}
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	if s.Count() != 1000 {
		t.Fatalf("count %d", s.Count())
	}
	snap := r.Snapshot()
	if len(snap.Summaries) != 1 {
		t.Fatalf("summaries in snapshot: %d", len(snap.Summaries))
	}
	sv := snap.Summaries[0]
	if sv.Name != `session_slots{alg="2tbins"}` {
		t.Errorf("name %q", sv.Name)
	}
	if sv.Count != 1000 || sv.Sum != 500500 || sv.Min != 1 || sv.Max != 1000 {
		t.Errorf("count/sum/min/max: %+v", sv)
	}
	if len(sv.Quantiles) != 3 {
		t.Fatalf("quantile points: %d", len(sv.Quantiles))
	}
	for _, qp := range sv.Quantiles {
		want := qp.Q * 999
		if math.Abs(qp.Value-want)/want > 0.02 {
			t.Errorf("q=%g: %v, want ~%v", qp.Q, qp.Value, want)
		}
	}
}

func TestSummaryExposition(t *testing.T) {
	r := New()
	s := r.Summary("poll_bin_size")
	for i := 0; i < 100; i++ {
		s.Observe(float64(1 + i%10))
	}
	r.Summary("empty_summary") // no observations: only _sum/_count emitted

	var text strings.Builder
	if err := WriteText(&text, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"poll_bin_size count=100", "  q=0.5 ", "  q=0.99 ", "empty_summary count=0"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE poll_bin_size summary",
		`poll_bin_size{quantile="0.5"}`,
		`poll_bin_size{quantile="0.99"}`,
		"poll_bin_size_sum ",
		"poll_bin_size_count 100",
		"empty_summary_count 0",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, prom.String())
		}
	}
	if strings.Contains(prom.String(), `empty_summary{quantile`) {
		t.Errorf("empty summary emitted quantile series:\n%s", prom.String())
	}
}

func TestSummaryMergeSketch(t *testing.T) {
	r := New()
	s := r.Summary("merged")
	q := sketch.NewQuantile(sketch.DefaultAlpha)
	var mom sketch.Moments
	for i := 0; i < 50; i++ {
		q.Observe(7)
		mom.Observe(7)
	}
	s.Merge(q, mom)
	s.Observe(7)
	sv := s.snapshotValue("merged")
	if sv.Count != 51 || sv.Sum != 357 {
		t.Fatalf("merged snapshot: %+v", sv)
	}
}
