package metrics

import (
	"sync"
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// kindValue finds the counter value for one kind label in a snapshot.
func kindValue(t *testing.T, s Snapshot, kind string) int64 {
	t.Helper()
	name := Name(MetricPolls, "kind", kind)
	for _, c := range s.Counters {
		if c.Name == name {
			return int64(c.Value)
		}
	}
	return 0
}

func TestInstrumentedQuerierPartitionsPolls(t *testing.T) {
	m := New()
	ch, _ := fastsim.RandomPositives(64, 10, fastsim.TwoPlusConfig(), rng.New(3))
	iq := NewInstrumentedQuerier(ch, m)
	members := make([]int, 64)
	for i := range members {
		members[i] = i
	}
	polls := 0
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		lo := int(r.Uint64() % 60)
		hi := lo + 1 + int(r.Uint64()%4)
		iq.Query(members[lo:hi])
		polls++
	}
	iq.Finish()

	s := m.Snapshot()
	var perKind int64
	for _, k := range []string{"empty", "active", "decoded", "collision"} {
		perKind += kindValue(t, s, k)
	}
	if perKind != int64(polls) {
		t.Fatalf("per-kind counters sum to %d, want %d polls", perKind, polls)
	}
	for _, h := range s.Histograms {
		switch h.Name {
		case MetricSessionPolls:
			if h.Count != 1 || h.Sum != float64(polls) {
				t.Fatalf("session polls histogram = count %d sum %v", h.Count, h.Sum)
			}
		case MetricBinSize:
			if h.Count != uint64(polls) {
				t.Fatalf("bin size count = %d, want %d", h.Count, polls)
			}
		}
	}
}

// TestInstrumentedQuerierTransparent proves the middleware does not
// perturb the query stream: the same algorithm run against the same seed
// sees identical responses with and without instrumentation.
func TestInstrumentedQuerierTransparent(t *testing.T) {
	run := func(instrument bool) []query.Response {
		ch, _ := fastsim.RandomPositives(32, 7, fastsim.TwoPlusConfig(), rng.New(11))
		var q query.Querier = ch
		if instrument {
			q = NewInstrumentedQuerier(ch, New())
		}
		members := make([]int, 32)
		for i := range members {
			members[i] = i
		}
		var out []query.Response
		for i := 0; i+4 <= 32; i += 4 {
			out = append(out, q.Query(members[i:i+4]))
		}
		return out
	}
	plain, inst := run(false), run(true)
	for i := range plain {
		if plain[i] != inst[i] {
			t.Fatalf("response %d differs: %+v vs %+v", i, plain[i], inst[i])
		}
	}
}

func TestWrapNilRegistry(t *testing.T) {
	ch, _ := fastsim.RandomPositives(8, 2, fastsim.DefaultConfig(), rng.New(1))
	if Wrap(ch, nil) != query.Querier(ch) {
		t.Fatal("nil registry should return the querier unchanged")
	}
	m := New()
	w := Wrap(ch, m)
	if _, ok := w.(*InstrumentedQuerier); !ok {
		t.Fatalf("Wrap returned %T", w)
	}
	// FinishSession must be a no-op on unwrapped queriers and record on
	// wrapped ones.
	FinishSession(ch)
	w.Query([]int{0, 1})
	FinishSession(w)
	if got := m.Counter(MetricSessions).Value(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}

func TestRecordMatchesQueryInstruments(t *testing.T) {
	m := New()
	iq := NewInstrumentedQuerier(nil, m)
	iq.Record(query.Empty, 3)
	iq.Record(query.Active, 5)
	kinds, nodes := iq.Session()
	if kinds.Empty != 1 || kinds.Active != 1 || kinds.Total() != 2 || nodes != 8 {
		t.Fatalf("session = %+v nodes=%d", kinds, nodes)
	}
	iq.Finish()
	kinds, nodes = iq.Session()
	if kinds.Total() != 0 || nodes != 0 {
		t.Fatal("Finish did not reset the session tallies")
	}
	if m.Counter(MetricNodesPolled).Value() != 8 {
		t.Fatalf("nodes polled = %d", m.Counter(MetricNodesPolled).Value())
	}
}

// TestConcurrentSessions runs many sessions against one registry in
// parallel — the shape RunTrials produces — and checks the shared counters
// are exact (run under -race in CI).
func TestConcurrentSessions(t *testing.T) {
	const sessions = 32
	const pollsPer = 100
	m := New()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), rng.New(uint64(s)))
			iq := NewInstrumentedQuerier(ch, m)
			bin := []int{1, 2, 3}
			for i := 0; i < pollsPer; i++ {
				iq.Query(bin)
			}
			iq.Finish()
		}(s)
	}
	wg.Wait()
	s := m.Snapshot()
	var perKind int64
	for _, k := range []string{"empty", "active", "decoded", "collision"} {
		perKind += kindValue(t, s, k)
	}
	if perKind != sessions*pollsPer {
		t.Fatalf("per-kind counters sum to %d, want %d", perKind, sessions*pollsPer)
	}
	if got := m.Counter(MetricNodesPolled).Value(); got != sessions*pollsPer*3 {
		t.Fatalf("nodes polled = %d, want %d", got, sessions*pollsPer*3)
	}
	if got := m.Counter(MetricSessions).Value(); got != sessions {
		t.Fatalf("sessions = %d, want %d", got, sessions)
	}
}
