package metrics

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Server is the one managed HTTP server every serving path in the
// repository uses — the cmds' -metrics-addr endpoint, the obs plane's
// event/SLO mux, and the tcastd daemon. It exists because a bare
// http.ListenAndServe has three lifecycle defects for our use:
//
//   - no ReadHeaderTimeout, so one slow client header holds a connection
//     goroutine forever (slowloris);
//   - no way to learn the bound address, so ":0" — the only sane listen
//     address in tests and CI — is unusable;
//   - no Shutdown path, so the listener goroutine leaks past the caller's
//     exit and in-flight responses are cut off mid-write.
//
// StartServer listens explicitly, serves in a background goroutine, and
// exposes the bound address and a context-driven graceful Shutdown.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

// readHeaderTimeout bounds how long a client may dribble request headers
// before the connection is dropped.
const readHeaderTimeout = 10 * time.Second

// StartServer binds addr (host:port; ":0" picks a free port), starts
// serving h in a background goroutine, and returns the managed server.
// The bind itself is synchronous so an unusable address fails here, not
// later on the error channel.
func StartServer(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: readHeaderTimeout,
		},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.errc <- err
	}()
	return s, nil
}

// Addr returns the bound listen address — the resolved port when the
// caller asked for ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err reports the serve loop's terminal error: it receives exactly one
// value, nil after a clean Shutdown. Callers that only want to notice a
// dead listener can select on it.
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown gracefully drains the server: the listener closes immediately,
// in-flight requests run to completion (or until ctx expires), and the
// serve goroutine is reaped. It returns the first failure from either the
// drain or the serve loop.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.errc; err == nil {
		err = serveErr
	}
	return err
}
