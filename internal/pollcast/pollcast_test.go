package pollcast

import (
	"testing"

	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

const initiatorID = 1000

func makeParts(n int, positives ...int) []*Participant {
	pos := make(map[int]bool)
	for _, p := range positives {
		pos[p] = true
	}
	parts := make([]*Participant, n)
	for i := range parts {
		parts[i] = &Participant{ID: i, Positive: pos[i]}
	}
	return parts
}

func newSession(t *testing.T, cfg radio.Config, seed uint64, prim Primitive, model query.CollisionModel, parts []*Participant) *Session {
	t.Helper()
	med := radio.NewMedium(cfg, rng.New(seed))
	s, err := NewSession(med, initiatorID, parts, prim, model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPollcastEmptyAndActive(t *testing.T) {
	s := newSession(t, radio.Config{}, 1, Pollcast, query.OnePlus, makeParts(8, 2, 5))
	if r := s.Query([]int{0, 1, 3}); r.Kind != query.Empty {
		t.Fatalf("all-negative bin: %v", r.Kind)
	}
	if r := s.Query([]int{1, 2, 3}); r.Kind != query.Active {
		t.Fatalf("bin with positive: %v", r.Kind)
	}
	if s.Slots() != 4 {
		t.Fatalf("slots = %d, want 4 (2 per query)", s.Slots())
	}
}

func TestPollcastTwoPlusDecodesSingle(t *testing.T) {
	s := newSession(t, radio.Config{CaptureBeta: 0.5}, 2, Pollcast, query.TwoPlus, makeParts(8, 5))
	for i := 0; i < 20; i++ {
		r := s.Query([]int{4, 5, 6})
		if r.Kind != query.Decoded || r.DecodedID != 5 {
			t.Fatalf("lone positive: %+v", r)
		}
	}
}

func TestPollcastTwoPlusCollisionOrCapture(t *testing.T) {
	s := newSession(t, radio.Config{CaptureBeta: 0.5}, 3, Pollcast, query.TwoPlus, makeParts(8, 1, 2))
	decoded, collided := 0, 0
	for i := 0; i < 2000; i++ {
		switch r := s.Query([]int{1, 2}); r.Kind {
		case query.Decoded:
			decoded++
			if r.DecodedID != 1 && r.DecodedID != 2 {
				t.Fatalf("decoded non-voter %d", r.DecodedID)
			}
		case query.Collision:
			collided++
		default:
			t.Fatalf("unexpected kind %v", r.Kind)
		}
	}
	if decoded == 0 || collided == 0 {
		t.Fatalf("capture effect not exercised: decoded=%d collided=%d", decoded, collided)
	}
}

func TestBackcastEmptyAndActive(t *testing.T) {
	s := newSession(t, radio.Config{}, 4, Backcast, query.OnePlus, makeParts(8, 2, 5))
	if r := s.Query([]int{0, 1, 3}); r.Kind != query.Empty {
		t.Fatalf("all-negative bin: %v", r.Kind)
	}
	if r := s.Query([]int{2, 5}); r.Kind != query.Active {
		t.Fatalf("two positives (superposed HACKs): %v", r.Kind)
	}
	if s.Slots() != 6 {
		t.Fatalf("slots = %d, want 6 (3 per query)", s.Slots())
	}
}

func TestBackcastRejectsTwoPlus(t *testing.T) {
	med := radio.NewMedium(radio.Config{}, rng.New(5))
	if _, err := NewSession(med, initiatorID, makeParts(4), Backcast, query.TwoPlus); err == nil {
		t.Fatal("backcast with 2+ accepted")
	}
}

func TestSessionValidation(t *testing.T) {
	med := radio.NewMedium(radio.Config{}, rng.New(6))
	if _, err := NewSession(med, 3, makeParts(4), Pollcast, query.OnePlus); err == nil {
		t.Fatal("initiator ID collision accepted")
	}
	dup := []*Participant{{ID: 1}, {ID: 1}}
	if _, err := NewSession(med, initiatorID, dup, Pollcast, query.OnePlus); err == nil {
		t.Fatal("duplicate participant accepted")
	}
}

func TestPollcastInterferenceFalsePositive(t *testing.T) {
	// CCA sensing cannot tell interference from votes: pollcast reports
	// Active for an all-negative bin under constant interference.
	cfg := radio.Config{InterferenceProb: 1}
	s := newSession(t, cfg, 7, Pollcast, query.OnePlus, makeParts(8))
	if r := s.Query([]int{0, 1}); r.Kind != query.Active {
		t.Fatalf("pollcast under interference: %v, want false-positive Active", r.Kind)
	}
}

func TestBackcastInterferenceImmunity(t *testing.T) {
	// Section III-B: "the interference cannot yield a false-positive
	// 'non-empty' decision" for backcast.
	cfg := radio.Config{InterferenceProb: 1}
	s := newSession(t, cfg, 8, Backcast, query.OnePlus, makeParts(8))
	for i := 0; i < 50; i++ {
		if r := s.Query([]int{0, 1}); r.Kind != query.Empty {
			t.Fatalf("backcast false positive under interference: %v", r.Kind)
		}
	}
}

func TestBackcastInterferenceFalseNegative(t *testing.T) {
	// ... but jamming interference can hide a real HACK: false
	// negatives remain possible in multihop environments.
	cfg := radio.Config{InterferenceProb: 1, InterferenceJams: true}
	s := newSession(t, cfg, 9, Backcast, query.OnePlus, makeParts(8, 3))
	if r := s.Query([]int{3}); r.Kind != query.Empty {
		t.Fatalf("jammed backcast: %v, want false-negative Empty", r.Kind)
	}
}

func TestBackcastLossyHACKFalseNegativeRate(t *testing.T) {
	// Per-copy loss: single-HACK groups miss far more often than
	// three-HACK groups (the testbed's dominant error mode).
	cfg := radio.Config{MissProb: 0.2}
	s := newSession(t, cfg, 10, Backcast, query.OnePlus, makeParts(8, 1, 2, 3))
	missOne, missThree := 0, 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		if s.Query([]int{1}).Kind == query.Empty {
			missOne++
		}
		if s.Query([]int{1, 2, 3}).Kind == query.Empty {
			missThree++
		}
	}
	if missOne <= missThree*5 {
		t.Fatalf("superposition did not reduce misses: 1-HACK=%d 3-HACK=%d", missOne, missThree)
	}
}

func TestLostPollSilencesParticipants(t *testing.T) {
	// If the control frame never reaches the participants, nobody
	// answers: the whole network looks negative (a false-negative
	// mechanism distinct from HACK loss).
	cfg := radio.Config{ControlMissProb: 1}
	s := newSession(t, cfg, 15, Backcast, query.OnePlus, makeParts(8, 1, 2, 3))
	for i := 0; i < 20; i++ {
		if r := s.Query([]int{1, 2, 3}); r.Kind != query.Empty {
			t.Fatalf("lost poll still produced %v", r.Kind)
		}
	}
}

func TestPartiallyLostPollThinsReplies(t *testing.T) {
	// With 50% control loss roughly half the positives hear the poll;
	// superposition still usually carries the decision, so non-empty
	// responses dominate but misses appear.
	cfg := radio.Config{ControlMissProb: 0.5}
	s := newSession(t, cfg, 16, Backcast, query.OnePlus, makeParts(8, 1, 2, 3))
	empty := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if s.Query([]int{1, 2, 3}).Kind == query.Empty {
			empty++
		}
	}
	// P(all three miss the poll) = 0.125.
	rate := float64(empty) / trials
	if rate < 0.08 || rate > 0.18 {
		t.Fatalf("empty rate %v, want ~0.125", rate)
	}
}

func TestTraits(t *testing.T) {
	p1 := newSession(t, radio.Config{}, 11, Pollcast, query.OnePlus, makeParts(4))
	if tr := p1.Traits(); tr.Model != query.OnePlus || tr.CaptureEffect {
		t.Fatalf("pollcast 1+ traits: %+v", tr)
	}
	p2 := newSession(t, radio.Config{CaptureBeta: 0.5}, 12, Pollcast, query.TwoPlus, makeParts(4))
	if tr := p2.Traits(); tr.Model != query.TwoPlus || !tr.CaptureEffect {
		t.Fatalf("pollcast 2+ traits: %+v", tr)
	}
	b := newSession(t, radio.Config{}, 13, Backcast, query.OnePlus, makeParts(4))
	if tr := b.Traits(); tr.Model != query.OnePlus {
		t.Fatalf("backcast traits: %+v", tr)
	}
}

func TestPrimitiveString(t *testing.T) {
	if Pollcast.String() != "pollcast" || Backcast.String() != "backcast" {
		t.Fatal("primitive names wrong")
	}
}

func TestNonParticipantIDsIgnored(t *testing.T) {
	s := newSession(t, radio.Config{}, 14, Pollcast, query.OnePlus, makeParts(4, 2))
	if r := s.Query([]int{77, 99}); r.Kind != query.Empty {
		t.Fatalf("unknown IDs answered: %v", r.Kind)
	}
}
