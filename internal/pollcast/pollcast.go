// Package pollcast implements the two single-hop RCD feedback primitives
// the paper builds on, at packet level on the radio medium:
//
//   - pollcast (Demirbas et al., INFOCOM 2008): the initiator broadcasts
//     the predicate and the queried group; positive group members all
//     answer in the next slot; the initiator senses the channel (CCA) —
//     and, in the 2+ model, may capture one vote frame and learn its
//     sender.
//   - backcast (Dutta et al., HotNets 2008): the initiator first binds the
//     group to an ephemeral 16-bit hardware address, then polls that
//     address; matching radios answer with bit-identical hardware
//     acknowledgements whose superposition decodes nondestructively. The
//     initiator declares "non-empty" only on a decoded HACK, which makes
//     backcast immune to interference-induced false positives.
//
// A Session implements query.Querier, so every algorithm in internal/core
// runs unchanged on this packet-level substrate.
package pollcast

import (
	"fmt"
	"time"

	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/trace"
)

// Primitive selects the feedback mechanism.
type Primitive int

const (
	// Pollcast uses CCA-sensed simultaneous votes.
	Pollcast Primitive = iota
	// Backcast uses superposed hardware acknowledgements.
	Backcast
)

// String implements fmt.Stringer.
func (p Primitive) String() string {
	if p == Backcast {
		return "backcast"
	}
	return "pollcast"
}

// Participant is one queried node.
type Participant struct {
	ID int
	// Positive is the node's predicate value for this session.
	Positive bool
}

// pollPayload is what a poll/bind frame carries: the queried bin.
type pollPayload struct {
	bin  []int
	addr uint16
}

// Session is one threshold-query session by a fixed initiator over a fixed
// participant set. It implements query.Querier.
type Session struct {
	med         radio.Channel
	initiatorID int
	parts       map[int]*Participant
	prim        Primitive
	model       query.CollisionModel
	seq         uint8
	addr        uint16
	slots       int
}

// NewSession creates a session over any radio.Channel — the bare medium
// or a fault-layer wrapper. Backcast only supports the 1+ model: HACKs
// are identical by construction and carry no replier identity.
func NewSession(med radio.Channel, initiatorID int, participants []*Participant, prim Primitive, model query.CollisionModel) (*Session, error) {
	if prim == Backcast && model == query.TwoPlus {
		return nil, fmt.Errorf("pollcast: backcast HACKs are identical and cannot support the 2+ model")
	}
	parts := make(map[int]*Participant, len(participants))
	for _, p := range participants {
		if p.ID == initiatorID {
			return nil, fmt.Errorf("pollcast: participant %d clashes with the initiator", p.ID)
		}
		if _, dup := parts[p.ID]; dup {
			return nil, fmt.Errorf("pollcast: duplicate participant %d", p.ID)
		}
		parts[p.ID] = p
	}
	return &Session{
		med:         med,
		initiatorID: initiatorID,
		parts:       parts,
		prim:        prim,
		model:       model,
		addr:        0x8000,
	}, nil
}

// Traits implements query.Querier.
func (s *Session) Traits() query.Traits {
	return query.Traits{Model: s.model, CaptureEffect: s.model == query.TwoPlus}
}

// Slots returns the total radio slots consumed so far: the session's
// time cost (2 slots per pollcast query, 3 per backcast query).
func (s *Session) Slots() int { return s.slots }

// IsPositive reports the ground-truth predicate value for one participant.
// Unknown IDs (including the initiator) are negative.
func (s *Session) IsPositive(id int) bool {
	p, ok := s.parts[id]
	return ok && p.Positive
}

// Positives reports the ground-truth number of positive participants.
func (s *Session) Positives() int {
	x := 0
	for _, p := range s.parts {
		if p.Positive {
			x++
		}
	}
	return x
}

// Lossless reports whether the underlying medium can neither drop replies
// nor fake activity; see radio.Medium.Lossless.
func (s *Session) Lossless() bool { return s.med.Lossless() }

// Elapsed returns the session's wall-clock air time so far, from the
// medium's 802.15.4 clock.
func (s *Session) Elapsed() time.Duration { return s.med.Elapsed() }

// TraceAttrs implements trace.Annotator: the packet-level session
// annotates spans with its primitive, collision model and slot ledger,
// plus the medium's imperfection model underneath.
func (s *Session) TraceAttrs() []trace.Attr {
	attrs := []trace.Attr{
		trace.StringAttr("substrate", "pollcast"),
		trace.StringAttr("primitive", s.prim.String()),
		trace.StringAttr("collision_model", s.model.String()),
		trace.IntAttr("slots", s.slots),
	}
	return append(attrs, s.med.TraceAttrs()...)
}

// Query implements query.Querier: one RCD group poll over the air.
func (s *Session) Query(bin []int) query.Response {
	if s.prim == Backcast {
		return s.backcastQuery(bin)
	}
	return s.pollcastQuery(bin)
}

// pollcastQuery is the two-phase primitive: poll slot, then vote slot.
func (s *Session) pollcastQuery(bin []int) query.Response {
	s.seq++

	// Phase 1: the initiator multicasts the predicate and the bin.
	s.med.BeginSlot()
	s.med.Transmit(radio.Frame{
		Kind: radio.FramePoll, Src: s.initiatorID, Dst: radio.Broadcast,
		Seq: s.seq, Bytes: len(bin) + 2, Payload: pollPayload{bin: bin},
	})
	voters := s.deliverPoll(bin)
	s.med.EndSlot()
	s.slots++

	// Phase 2: every positive member votes simultaneously.
	s.med.BeginSlot()
	for _, v := range voters {
		s.med.Transmit(radio.Frame{Kind: radio.FrameVote, Src: v, Dst: s.initiatorID, Seq: s.seq, Bytes: 2})
	}
	obs := s.med.Observe(s.initiatorID)
	s.med.EndSlot()
	s.slots++

	if s.model == query.OnePlus {
		if obs.Energy {
			return query.Response{Kind: query.Active}
		}
		return query.Response{Kind: query.Empty}
	}
	switch {
	case obs.Frame != nil && obs.Frame.Kind == radio.FrameVote:
		return query.Response{Kind: query.Decoded, DecodedID: obs.Frame.Src}
	case obs.Energy:
		return query.Response{Kind: query.Collision}
	default:
		return query.Response{Kind: query.Empty}
	}
}

// backcastQuery is the three-phase primitive: bind the ephemeral address,
// poll it, collect superposed HACKs.
func (s *Session) backcastQuery(bin []int) query.Response {
	s.seq++
	s.addr++

	// Phase 1: predicate message binds positive bin members to the
	// ephemeral identifier.
	s.med.BeginSlot()
	s.med.Transmit(radio.Frame{
		Kind: radio.FrameData, Src: s.initiatorID, Dst: radio.Broadcast,
		Addr: s.addr, Bytes: len(bin) + 2, Payload: pollPayload{bin: bin, addr: s.addr},
	})
	armed := s.deliverPoll(bin)
	s.med.EndSlot()
	s.slots++

	// Phase 2: poll frame addressed to the ephemeral identifier with
	// the ACK-request flag set.
	s.med.BeginSlot()
	s.med.Transmit(radio.Frame{
		Kind: radio.FramePoll, Src: s.initiatorID, Dst: radio.Broadcast,
		Addr: s.addr, Seq: s.seq, Bytes: 3,
	})
	// Hardware address recognition: armed radios match and will HACK.
	// The poll itself rides the same control-reliability model as
	// phase 1 (a lost poll means no HACK from that node).
	hackers := armed
	s.med.EndSlot()
	s.slots++

	// Phase 3: identical HACKs superpose.
	s.med.BeginSlot()
	for _, h := range hackers {
		s.med.Transmit(radio.Frame{Kind: radio.FrameHACK, Src: h, Addr: s.addr, Seq: s.seq})
	}
	obs := s.med.Observe(s.initiatorID)
	s.med.EndSlot()
	s.slots++

	// Interference immunity: only a decoded HACK counts as activity.
	if obs.Frame != nil && obs.Frame.Kind == radio.FrameHACK && obs.Frame.Addr == s.addr && obs.Frame.Seq == s.seq {
		return query.Response{Kind: query.Active}
	}
	return query.Response{Kind: query.Empty}
}

// deliverPoll lets every positive participant in bin receive the current
// control frame; it returns the IDs that heard it and will reply.
func (s *Session) deliverPoll(bin []int) []int {
	var repliers []int
	for _, id := range bin {
		p, ok := s.parts[id]
		if !ok || !p.Positive {
			continue
		}
		if obs := s.med.Observe(id); obs.Frame != nil {
			repliers = append(repliers, id)
		}
	}
	return repliers
}
