package pollcast

import (
	"math"
	"testing"
	"time"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/timing"
	"tcast/internal/trace"
)

// These tests validate the abl-packet experiment from DESIGN.md: the same
// algorithm code must behave identically on the abstract fast channel and
// on the packet-level radio, because a Session exposes exactly the
// information an RCD initiator gets.

func runPacket(t *testing.T, alg core.Algorithm, n, th, x int, prim Primitive, model query.CollisionModel, cfg radio.Config, seed uint64) core.Result {
	t.Helper()
	r := rng.New(seed)
	parts := make([]*Participant, n)
	for _, id := range r.Split(1).Sample(n, x) {
		parts[id] = &Participant{ID: id, Positive: true}
	}
	for i := range parts {
		if parts[i] == nil {
			parts[i] = &Participant{ID: i}
		}
	}
	med := radio.NewMedium(cfg, r.Split(2))
	s, err := NewSession(med, initiatorID, parts, prim, model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(s, n, th, r.Split(3))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAlgorithmsCorrectOnPacketBackcast(t *testing.T) {
	algs := []core.Algorithm{
		core.TwoTBins{}, core.ExpIncrease{}, core.ABNS{P0: 1}, core.ABNS{P0: 2}, core.ProbABNS{},
	}
	for _, alg := range algs {
		for _, x := range []int{0, 3, 8, 9, 20, 32} {
			for seed := uint64(0); seed < 3; seed++ {
				res := runPacket(t, alg, 32, 8, x, Backcast, query.OnePlus, radio.Config{}, seed)
				if res.Decision != (x >= 8) {
					t.Fatalf("%s on backcast: wrong decision for x=%d", alg.Name(), x)
				}
			}
		}
	}
}

func TestAlgorithmsCorrectOnPacketPollcastTwoPlus(t *testing.T) {
	cfg := radio.Config{CaptureBeta: 0.5}
	for _, x := range []int{0, 7, 8, 16, 32} {
		for seed := uint64(0); seed < 3; seed++ {
			res := runPacket(t, core.TwoTBins{}, 32, 8, x, Pollcast, query.TwoPlus, cfg, seed)
			if res.Decision != (x >= 8) {
				t.Fatalf("2tBins on 2+ pollcast: wrong decision for x=%d", x)
			}
		}
	}
}

// TestPacketMatchesFastsimCosts compares mean query counts between the two
// substrates. On an ideal radio the per-query information is identical, so
// the cost distributions must agree (up to sampling noise).
func TestPacketMatchesFastsimCosts(t *testing.T) {
	const n, th, runs = 64, 8, 300
	for _, x := range []int{2, 8, 30} {
		var packetTotal, fastTotal int
		for i := 0; i < runs; i++ {
			res := runPacket(t, core.TwoTBins{}, n, th, x, Backcast, query.OnePlus,
				radio.Config{}, uint64(x*10000+i))
			packetTotal += res.Queries

			r := rng.New(uint64(900000 + x*10000 + i))
			ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
			fres, err := (core.TwoTBins{}).Run(ch, n, th, r.Split(2))
			if err != nil {
				t.Fatal(err)
			}
			fastTotal += fres.Queries
		}
		packetMean := float64(packetTotal) / runs
		fastMean := float64(fastTotal) / runs
		if diff := math.Abs(packetMean - fastMean); diff > 0.15*fastMean+0.5 {
			t.Errorf("x=%d: packet mean %v vs fastsim mean %v", x, packetMean, fastMean)
		}
	}
}

// TestElapsedMatchesAnalyticModel: the medium's directly measured air time
// for a backcast session must agree with the timing package's analytic
// per-query conversion, given the same frame sizing.
func TestElapsedMatchesAnalyticModel(t *testing.T) {
	const n, th, x = 64, 8, 20
	r := rng.New(77)
	parts := makeParts(n)
	for _, id := range r.Split(1).Sample(n, x) {
		parts[id].Positive = true
	}
	med := radio.NewMedium(radio.Config{}, r.Split(2))
	s, err := NewSession(med, initiatorID, parts, Backcast, query.OnePlus)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(s)
	res, err := (core.TwoTBins{}).Run(rec, n, th, r.Split(3))
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: per query, bind (len(bin)+2 payload bytes) + poll
	// (3 bytes) + HACK or idle HACK slot, each with a turnaround (busy)
	// or a backoff period (idle HACK slot on empty bins).
	var want time.Duration
	for _, e := range rec.Events() {
		want += timing.FrameAirtime(len(e.Bin)+2) + timing.Turnaround // bind
		want += timing.FrameAirtime(3) + timing.Turnaround            // poll
		if e.Response.Kind == query.Empty {
			want += timing.BackoffSlot // silent HACK slot
		} else {
			want += timing.AckAirtime() + timing.Turnaround
		}
	}
	if got := s.Elapsed(); got != want {
		t.Fatalf("measured %v, analytic %v (%d queries)", got, want, res.Queries)
	}
}

func TestPacketSlotAccounting(t *testing.T) {
	r := rng.New(42)
	parts := makeParts(16, 3, 7)
	med := radio.NewMedium(radio.Config{}, r.Split(1))
	s, err := NewSession(med, initiatorID, parts, Pollcast, query.OnePlus)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (core.TwoTBins{}).Run(s, 16, 4, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Slots() != 2*res.Queries {
		t.Fatalf("slots = %d, want 2×%d queries", s.Slots(), res.Queries)
	}
}
