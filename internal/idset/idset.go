// Package idset provides the ID-set substrate the query layers share: a
// set of node identifiers in [0, n) behind one small interface, with two
// interchangeable representations.
//
// The dense form is a bitset word array — the right shape for the paper's
// own populations (hundreds of nodes), where whole-set sweeps and
// word-parallel intersections dominate. The sparse form is a sorted ID
// slice — the right shape late in a million-node session, when a handful
// of candidates survive out of 10^7 and every O(n/64) word scan would
// dwarf the real work. Hybrid owns both backings and switches between
// them under an explicit cutover rule, so callers (query.Knowledge, the
// audit shadow ledger, the streamed partitioner) never branch on the
// representation themselves.
//
// Representation never leaks into randomness: members enumerate in
// ascending order in either form, so every figure table produced below
// the cutover is byte-identical to the dense-only code this package
// replaced.
package idset

import (
	"tcast/internal/bitset"
)

const (
	// SparseCutover is the population size at which the scale machinery
	// (sparse sampling, streamed partitions, hybrid compaction) switches
	// on. Every paper-scale experiment (N ≤ 1024) sits far below it, so
	// their RNG draw sequences — and therefore all committed figure
	// tables, traces and audit dumps — are bit-identical to the
	// pre-hybrid code. Above it the dense O(n) scratch paths would
	// dominate wall clock and bytes, so callers stream instead.
	SparseCutover = 1 << 14

	// compactLimit is the cardinality at which a huge hybrid set folds
	// its dense words down to the sorted-slice form: 4096 ids (32 KiB)
	// against ≥ SparseCutover/64 words keeps the fold amortized — a set
	// only compacts after eliminating ≥ 75% of a cutover-sized field.
	compactLimit = 4096
)

// Set is the representation-agnostic contract shared by both forms.
// Members are integers in [0, Cap()); enumeration is always ascending.
type Set interface {
	// Cap returns the universe size n the set ranges over.
	Cap() int
	// Len returns the number of members.
	Len() int
	// Contains reports membership; out-of-range ids are simply absent.
	Contains(id int) bool
	// Add inserts id (a no-op when present). It panics out of range.
	Add(id int)
	// Remove deletes id (a no-op when absent).
	Remove(id int)
	// AppendMembers appends the members in ascending order to dst.
	AppendMembers(dst []int) []int
	// ForEach calls f for every member in ascending order.
	ForEach(f func(id int))
}

// Dense is the bitset-backed form. The zero value is an empty set over
// the empty universe; Reset re-targets it.
type Dense struct {
	bitset.Set
}

// NewDense returns an empty dense set over [0, n).
func NewDense(n int) *Dense {
	d := &Dense{}
	d.Reset(n)
	return d
}

// Add inserts id, adapting bitset's value signature to the Set contract.
func (d *Dense) Add(id int) { d.Set.Add(id) }

// Bits exposes the underlying bitset for word-parallel callers (the
// fastsim intersection fast path). Mutating it mutates the set.
func (d *Dense) Bits() *bitset.Set { return &d.Set }

// Sparse is the sorted-slice form: ids ascending, no duplicates. The
// zero value is an empty set over the empty universe.
type Sparse struct {
	n   int
	ids []int
}

// NewSparse returns an empty sparse set over [0, n).
func NewSparse(n int) *Sparse {
	return &Sparse{n: n}
}

// Cap returns the universe size.
func (s *Sparse) Cap() int { return s.n }

// Len returns the number of members.
func (s *Sparse) Len() int { return len(s.ids) }

// Reset empties the set and re-targets it at [0, n), keeping the backing
// slice.
func (s *Sparse) Reset(n int) {
	if n < 0 {
		panic("idset: negative capacity")
	}
	s.n = n
	s.ids = s.ids[:0]
}

// search returns the insertion index of id (sort.SearchInts, open-coded
// so the hot membership test stays free of interface calls).
func (s *Sparse) search(id int) int {
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports membership by binary search.
func (s *Sparse) Contains(id int) bool {
	i := s.search(id)
	return i < len(s.ids) && s.ids[i] == id
}

// Add inserts id in sorted position. It panics out of range.
func (s *Sparse) Add(id int) {
	if id < 0 || id >= s.n {
		panic("idset: element out of range")
	}
	i := s.search(id)
	if i < len(s.ids) && s.ids[i] == id {
		return
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// Remove deletes id; absent ids are a no-op.
func (s *Sparse) Remove(id int) {
	i := s.search(id)
	if i >= len(s.ids) || s.ids[i] != id {
		return
	}
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
}

// AppendMembers appends the members in ascending order.
func (s *Sparse) AppendMembers(dst []int) []int {
	return append(dst, s.ids...)
}

// ForEach calls f for every member in ascending order.
func (s *Sparse) ForEach(f func(id int)) {
	for _, id := range s.ids {
		f(id)
	}
}

// Hybrid is the adaptive set: dense words until a huge universe has been
// whittled down far enough that the sorted-slice form wins, sparse
// afterwards. Both backings persist across Reset so pooled sessions
// reuse them allocation-free. Not safe for concurrent use.
type Hybrid struct {
	dense  Dense
	sparse Sparse
	// isSparse selects the live backing. Sets over universes below
	// SparseCutover never leave the dense form.
	isSparse bool
}

// NewHybrid returns an empty hybrid set over [0, n) in dense form.
func NewHybrid(n int) *Hybrid {
	h := &Hybrid{}
	h.Reset(n)
	return h
}

// FullHybrid returns the hybrid set {0, ..., n-1}.
func FullHybrid(n int) *Hybrid {
	h := NewHybrid(n)
	h.Fill()
	return h
}

// Reset empties the set, re-targets it at [0, n), and returns to the
// dense form, recycling both backings. A reset hybrid is
// indistinguishable from NewHybrid(n) whatever state it was in.
func (h *Hybrid) Reset(n int) {
	h.dense.Reset(n)
	h.sparse.Reset(n)
	h.isSparse = false
}

// Fill sets the membership to the full universe {0, ..., n-1}. A full
// set is by definition dense, so Fill always lands in dense form.
func (h *Hybrid) Fill() {
	if h.isSparse {
		h.sparse.ids = h.sparse.ids[:0]
		h.isSparse = false
	}
	h.dense.Fill()
}

// Cap returns the universe size.
func (h *Hybrid) Cap() int {
	if h.isSparse {
		return h.sparse.Cap()
	}
	return h.dense.Cap()
}

// Len returns the number of members.
func (h *Hybrid) Len() int {
	if h.isSparse {
		return h.sparse.Len()
	}
	return h.dense.Len()
}

// Empty reports whether the set has no members.
func (h *Hybrid) Empty() bool { return h.Len() == 0 }

// Contains reports membership.
func (h *Hybrid) Contains(id int) bool {
	if h.isSparse {
		return h.sparse.Contains(id)
	}
	return h.dense.Contains(id)
}

// Add inserts id. It panics out of range.
func (h *Hybrid) Add(id int) {
	if h.isSparse {
		h.sparse.Add(id)
		return
	}
	h.dense.Add(id)
}

// Remove deletes id; absent ids are a no-op.
func (h *Hybrid) Remove(id int) {
	if h.isSparse {
		h.sparse.Remove(id)
		return
	}
	h.dense.Remove(id)
}

// AppendMembers appends the members in ascending order to dst.
func (h *Hybrid) AppendMembers(dst []int) []int {
	if h.isSparse {
		return h.sparse.AppendMembers(dst)
	}
	return h.dense.AppendMembers(dst)
}

// Members returns the members in ascending order.
func (h *Hybrid) Members() []int {
	return h.AppendMembers(make([]int, 0, h.Len()))
}

// ForEach calls f for every member in ascending order.
func (h *Hybrid) ForEach(f func(id int)) {
	if h.isSparse {
		h.sparse.ForEach(f)
		return
	}
	h.dense.ForEach(f)
}

// Compact folds a huge, mostly-eliminated dense set down to the sorted
// slice form, and reports whether the set is sparse afterwards. The rule
// is deliberately one-way within a session: universes below SparseCutover
// never compact (their dense words are already tiny), and a compacted set
// only returns to dense form through Reset/Fill. Streamed callers invoke
// it once per round; the fold itself is O(n/64) and happens at most once
// per session.
func (h *Hybrid) Compact() bool {
	if h.isSparse {
		return true
	}
	if h.dense.Cap() < SparseCutover || h.dense.Len() > compactLimit {
		return false
	}
	h.sparse.Reset(h.dense.Cap())
	h.sparse.ids = h.dense.AppendMembers(h.sparse.ids[:0])
	h.isSparse = true
	return true
}

// IsSparse reports which form is live (observability and tests).
func (h *Hybrid) IsSparse() bool { return h.isSparse }

// IntersectionCount returns |h ∩ s| for a dense bitset over the same
// universe: word-parallel popcounts in dense form, one membership probe
// per member in sparse form — the sparse side is at most compactLimit
// ids by construction, so either way the cost tracks the smaller
// operand, never the universe.
func (h *Hybrid) IntersectionCount(s *bitset.Set) int {
	if !h.isSparse {
		return h.dense.Set.IntersectionCount(s)
	}
	k := 0
	for _, id := range h.sparse.ids {
		if s.Contains(id) {
			k++
		}
	}
	return k
}

// Equal reports whether h and o contain exactly the same members over
// the same universe, whatever forms they are in.
func (h *Hybrid) Equal(o *Hybrid) bool {
	if h.Cap() != o.Cap() || h.Len() != o.Len() {
		return false
	}
	if !h.isSparse && !o.isSparse {
		return h.dense.Set.Equal(&o.dense.Set)
	}
	eq := true
	i, b := 0, other(o)
	h.ForEach(func(id int) {
		if eq && b(i) != id {
			eq = false
		}
		i++
	})
	return eq
}

// other returns an index-addressable view of o's members for Equal's
// merge walk; the sparse form indexes directly, the dense form walks
// alongside via AppendMembers into a scratch (Equal is a test-path
// helper, not a hot path).
func other(o *Hybrid) func(i int) int {
	if o.isSparse {
		return func(i int) int { return o.sparse.ids[i] }
	}
	ids := o.Members()
	return func(i int) int { return ids[i] }
}
