package idset

import (
	"testing"

	"tcast/internal/bitset"
	"tcast/internal/rng"
)

// model is the reference implementation both forms are checked against.
type model map[int]bool

func (m model) members(n int) []int {
	var out []int
	for id := 0; id < n; id++ {
		if m[id] {
			out = append(out, id)
		}
	}
	return out
}

// TestFormsAgree drives Dense, Sparse and Hybrid through the same random
// mutation script and checks every observable against the map model.
func TestFormsAgree(t *testing.T) {
	const n, steps = 300, 2000
	r := rng.New(7)
	sets := []Set{NewDense(n), NewSparse(n), NewHybrid(n)}
	m := model{}
	for step := 0; step < steps; step++ {
		id := r.Intn(n)
		if r.Bernoulli(0.5) {
			m[id] = true
			for _, s := range sets {
				s.Add(id)
			}
		} else {
			delete(m, id)
			for _, s := range sets {
				s.Remove(id)
			}
		}
		probe := r.Intn(n)
		want := m.members(n)
		for _, s := range sets {
			if s.Len() != len(want) {
				t.Fatalf("step %d: %T Len=%d want %d", step, s, s.Len(), len(want))
			}
			if s.Contains(probe) != m[probe] {
				t.Fatalf("step %d: %T Contains(%d)=%v want %v", step, s, probe, s.Contains(probe), m[probe])
			}
			got := s.AppendMembers(nil)
			if len(got) != len(want) {
				t.Fatalf("step %d: %T members %v want %v", step, s, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: %T members %v want %v", step, s, got, want)
				}
			}
			i := 0
			s.ForEach(func(id int) {
				if want[i] != id {
					t.Fatalf("step %d: %T ForEach yields %d at %d, want %d", step, s, id, i, want[i])
				}
				i++
			})
		}
	}
}

func TestSparseAddRemoveEdges(t *testing.T) {
	s := NewSparse(10)
	for _, id := range []int{5, 1, 9, 0, 5} { // duplicate Add is a no-op
		s.Add(id)
	}
	if got := s.AppendMembers(nil); len(got) != 4 || got[0] != 0 || got[3] != 9 {
		t.Fatalf("members = %v", got)
	}
	s.Remove(4) // absent: no-op
	s.Remove(0)
	s.Remove(9)
	if got := s.AppendMembers(nil); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("members after removes = %v", got)
	}
	if s.Contains(10) || s.Contains(-1) {
		t.Fatal("out-of-range ids reported present")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	s.Add(10)
}

// TestHybridCompact: compaction fires only above the cutover and below
// the cardinality limit, preserves membership exactly, and Reset/Fill
// return the set to dense form.
func TestHybridCompact(t *testing.T) {
	small := FullHybrid(128)
	if small.Compact() {
		t.Fatal("sub-cutover set compacted")
	}

	n := SparseCutover
	h := FullHybrid(n)
	if h.Compact() {
		t.Fatal("full set compacted despite cardinality above limit")
	}
	// Eliminate everything but a scattered residue.
	keep := map[int]bool{0: true, 63: true, 64: true, n - 1: true, 12345: true}
	for id := 0; id < n; id++ {
		if !keep[id] {
			h.Remove(id)
		}
	}
	if !h.Compact() {
		t.Fatal("residue set did not compact")
	}
	if !h.IsSparse() {
		t.Fatal("compacted set not sparse")
	}
	if h.Len() != len(keep) {
		t.Fatalf("Len=%d want %d", h.Len(), len(keep))
	}
	for id := range keep {
		if !h.Contains(id) {
			t.Fatalf("compacted set lost %d", id)
		}
	}
	// Mutations keep working in sparse form.
	h.Remove(63)
	h.Add(999)
	if h.Contains(63) || !h.Contains(999) {
		t.Fatal("sparse-form mutation failed")
	}
	// Fill returns to dense.
	h.Fill()
	if h.IsSparse() || h.Len() != n {
		t.Fatalf("Fill: sparse=%v len=%d", h.IsSparse(), h.Len())
	}
	// Reset from sparse form returns to dense and empties.
	h.Remove(0)
	for id := 0; id < n; id++ {
		if id != 7 {
			h.Remove(id)
		}
	}
	h.Compact()
	h.Reset(64)
	if h.IsSparse() || h.Len() != 0 || h.Cap() != 64 {
		t.Fatalf("Reset: sparse=%v len=%d cap=%d", h.IsSparse(), h.Len(), h.Cap())
	}
}

func TestHybridEqualAcrossForms(t *testing.T) {
	n := SparseCutover
	mk := func() *Hybrid {
		h := FullHybrid(n)
		for id := 0; id < n; id++ {
			if id%1000 != 0 {
				h.Remove(id)
			}
		}
		return h
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatal("identical dense sets not Equal")
	}
	b.Compact()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("dense/sparse forms of the same membership not Equal")
	}
	a.Compact()
	if !a.Equal(b) {
		t.Fatal("sparse/sparse not Equal")
	}
	b.Remove(0)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("differing sets reported Equal")
	}
}

// TestRankedSelect checks the rank/select directory against a linear
// scan, over both forms and across word-boundary patterns.
func TestRankedSelect(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 63, 64, 65, 200, 1000, SparseCutover + 130} {
		h := NewHybrid(n)
		var want []int
		for id := 0; id < n; id++ {
			if r.Bernoulli(0.13) {
				h.Add(id)
				want = append(want, id)
			}
		}
		check := func(form string) {
			var rk Ranked
			rk.Snapshot(h)
			if rk.Len() != len(want) {
				t.Fatalf("n=%d %s: Len=%d want %d", n, form, rk.Len(), len(want))
			}
			for k, id := range want {
				if got := rk.Select(k); got != id {
					t.Fatalf("n=%d %s: Select(%d)=%d want %d", n, form, k, got, id)
				}
			}
		}
		check("dense")
		if h.Cap() >= SparseCutover && h.Len() <= compactLimit {
			h.Compact()
			check("sparse")
		}
	}
}

// TestRankedSnapshotIsFrozen: mutating the source after Snapshot must not
// change the view — rounds partition the set as it stood at round start.
func TestRankedSnapshotIsFrozen(t *testing.T) {
	h := FullHybrid(130)
	var rk Ranked
	rk.Snapshot(h)
	h.Remove(0)
	h.Remove(129)
	if rk.Len() != 130 || rk.Select(0) != 0 || rk.Select(129) != 129 {
		t.Fatal("snapshot tracked later mutations")
	}
}

func TestRankedSelectOutOfRange(t *testing.T) {
	h := FullHybrid(8)
	var rk Ranked
	rk.Snapshot(h)
	defer func() {
		if recover() == nil {
			t.Fatal("Select(8) on 8 members did not panic")
		}
	}()
	rk.Select(8)
}

// TestHybridIntersectionCount: both forms count against a dense bitset
// identically.
func TestHybridIntersectionCount(t *testing.T) {
	n := SparseCutover
	h := FullHybrid(n)
	for id := 0; id < n; id++ {
		if id%7 != 0 {
			h.Remove(id)
		}
	}
	probe := bitset.New(n)
	for id := 0; id < n; id += 21 {
		probe.Add(id)
	}
	want := h.IntersectionCount(probe)
	if want == 0 {
		t.Fatal("degenerate probe")
	}
	if !h.Compact() {
		t.Fatal("setup: set did not compact")
	}
	if got := h.IntersectionCount(probe); got != want {
		t.Fatalf("sparse IntersectionCount = %d, dense said %d", got, want)
	}
}
