package idset

import "math/bits"

// Ranked is a frozen rank/select directory over one Hybrid snapshot: it
// answers Select(k) — the k-th member in ascending order — in O(1)-ish
// time, which is what the streamed partitioner needs to turn permuted
// member ranks back into node ids without materializing the member
// slice. The zero value is empty; Snapshot re-targets it, reusing its
// buffers, so a pooled session can re-snapshot every round without
// allocating once warmed.
//
// A Ranked view is a copy: mutating the source set after Snapshot does
// not affect it. That is exactly the partition contract — a round's bins
// are drawn against the candidate set as it stood when the round began,
// even though Apply shrinks the live set mid-round.
type Ranked struct {
	sparse bool
	// ids is the sparse snapshot: members in ascending order.
	ids []int
	// words/sums are the dense snapshot: the bitset words plus a prefix
	// count directory, sums[i] = number of members in words[:i].
	words []uint64
	sums  []int32
	n     int
}

// Snapshot freezes the current membership of h into rk.
func (rk *Ranked) Snapshot(h *Hybrid) {
	rk.n = h.Len()
	if h.isSparse {
		rk.sparse = true
		rk.ids = append(rk.ids[:0], h.sparse.ids...)
		return
	}
	rk.sparse = false
	rk.words = append(rk.words[:0], h.dense.Set.Words()...)
	if cap(rk.sums) < len(rk.words)+1 {
		rk.sums = make([]int32, len(rk.words)+1)
	}
	rk.sums = rk.sums[:len(rk.words)+1]
	var total int32
	for i, w := range rk.words {
		rk.sums[i] = total
		total += int32(bits.OnesCount64(w))
	}
	rk.sums[len(rk.words)] = total
}

// Len returns the number of members in the snapshot.
func (rk *Ranked) Len() int { return rk.n }

// Select returns the k-th member (0-based) in ascending order. It panics
// if k is out of [0, Len()).
func (rk *Ranked) Select(k int) int {
	if k < 0 || k >= rk.n {
		panic("idset: Select rank out of range")
	}
	if rk.sparse {
		return rk.ids[k]
	}
	// Find the word holding the k-th set bit: binary search the prefix
	// directory, then select within the word byte by byte.
	lo, hi := 0, len(rk.words)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if int(rk.sums[mid]) <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	w := lo
	r := k - int(rk.sums[w])
	word := rk.words[w]
	base := w * 64
	for {
		c := bits.OnesCount8(uint8(word))
		if r < c {
			b := uint8(word)
			for {
				t := bits.TrailingZeros8(b)
				if r == 0 {
					return base + t
				}
				b &= b - 1
				r--
			}
		}
		r -= c
		word >>= 8
		base += 8
	}
}
