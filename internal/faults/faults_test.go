package faults

import (
	"reflect"
	"strings"
	"testing"

	"tcast/internal/query"
	"tcast/internal/rng"
)

// recordQ records every bin it is polled with and answers with a fixed
// response.
type recordQ struct {
	bins [][]int
	resp query.Response
}

func (q *recordQ) Query(bin []int) query.Response {
	q.bins = append(q.bins, append([]int(nil), bin...))
	return q.resp
}

func (q *recordQ) Traits() query.Traits { return query.Traits{} }

func TestInactiveInjectorTransparent(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	r := rng.New(42)
	j := New(inner, Config{}, 8, r)

	bin := []int{1, 3, 5}
	for i := 0; i < 4; i++ {
		resp := j.Query(bin)
		if resp.Kind != query.Active {
			t.Fatalf("poll %d: Kind = %v, want Active", i, resp.Kind)
		}
	}
	for i, got := range inner.bins {
		if !reflect.DeepEqual(got, bin) {
			t.Fatalf("poll %d: inner saw bin %v, want %v", i, got, bin)
		}
	}
	// The inactive injector must consume no randomness at all: the stream
	// it was handed is still at its origin.
	if got, want := r.Uint64(), rng.New(42).Uint64(); got != want {
		t.Fatalf("inactive injector consumed randomness: next draw %d, want %d", got, want)
	}
	if !j.Lossless() {
		t.Fatal("inactive injector must report lossless")
	}
	if attrs := j.TraceAttrs(); attrs != nil {
		t.Fatalf("inactive injector must contribute no trace attrs, got %v", attrs)
	}
	if ev := j.Events(); len(ev) != 0 {
		t.Fatalf("inactive injector logged events: %v", ev)
	}
	if got := j.Counts(); got.Polls != 4 || got.Lost != 0 || got.Silenced != 0 {
		t.Fatalf("Counts = %+v, want 4 untouched polls", got)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		wantErr string
	}{
		{spec: "", want: Config{}},
		{
			spec: "burst=4",
			want: Config{Burst: BurstConfig{PGoodBad: 0.25 / 4, PBadGood: 0.25}},
		},
		{
			spec: "burst=2,frac=0.5,missbad=0.8",
			want: Config{Burst: BurstConfig{PGoodBad: 0.5, PBadGood: 0.5, MissBad: 0.8}},
		},
		{
			spec: "churn=0.05",
			want: Config{Churn: ChurnConfig{CrashProb: 0.05, RecoverProb: 0.1}},
		},
		{
			spec: "churn=0.05,recover=0.5,skew=0.01",
			want: Config{Churn: ChurnConfig{CrashProb: 0.05, RecoverProb: 0.5}, SkewProb: 0.01},
		},
		{spec: "frac=0.2", wantErr: "frac without burst"},
		{spec: "burst=0.5", wantErr: "must be >= 1"},
		{spec: "burst=2,frac=1", wantErr: "bad fraction"},
		{spec: "skew=1.5", wantErr: "outside [0, 1]"},
		{spec: "bogus=1", wantErr: "unknown key"},
		{spec: "burst", wantErr: "not key=value"},
		{spec: "burst=x", wantErr: "invalid syntax"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		const eps = 1e-12
		if diff := got.Burst.PGoodBad - tc.want.Burst.PGoodBad; diff > eps || diff < -eps {
			t.Errorf("ParseSpec(%q).Burst.PGoodBad = %v, want %v", tc.spec, got.Burst.PGoodBad, tc.want.Burst.PGoodBad)
		}
		got.Burst.PGoodBad = tc.want.Burst.PGoodBad
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestChurnSilencesCrashedNodes(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	j := New(inner, Config{Churn: ChurnConfig{CrashProb: 1}}, 4, rng.New(1))

	resp := j.Query([]int{0, 1, 2, 3})
	// Every node crashes at the first step, so the substrate is polled
	// with an empty bin; the substrate's answer still passes through.
	if got := inner.bins[0]; len(got) != 0 {
		t.Fatalf("inner polled with %v, want empty bin", got)
	}
	if resp.Kind != query.Active {
		t.Fatalf("Kind = %v, want the substrate's Active", resp.Kind)
	}
	c := j.Counts()
	if c.Crashes != 4 || c.Silenced != 4 {
		t.Fatalf("Counts = %+v, want 4 crashes silencing 4 members", c)
	}
	if j.Lossless() {
		t.Fatal("active injector must not report lossless")
	}
	ev := j.Events()
	if len(ev) != 1 || !reflect.DeepEqual(ev[0].Silenced, []int{0, 1, 2, 3}) {
		t.Fatalf("Events = %+v, want one event silencing all four", ev)
	}
}

func TestBurstDefaultsMissBadToOne(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	// PGoodBad=1 drives every node bad at the first step; MissBad left
	// zero must default to 1, dropping every reply.
	j := New(inner, Config{Burst: BurstConfig{PGoodBad: 1}}, 3, rng.New(1))
	j.Query([]int{0, 1, 2})
	if got := inner.bins[0]; len(got) != 0 {
		t.Fatalf("inner polled with %v, want empty bin (all replies burst-lost)", got)
	}
	if c := j.Counts(); c.Lost != 3 {
		t.Fatalf("Counts.Lost = %d, want 3", c.Lost)
	}
}

func TestSkewForcesSilence(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	j := New(inner, Config{SkewProb: 1}, 4, rng.New(1))
	resp := j.Query([]int{0, 1})
	if resp.Kind != query.Empty {
		t.Fatalf("Kind = %v, want Empty (skewed listen window)", resp.Kind)
	}
	// The substrate still ran the poll — the initiator just missed the
	// reply — with the bin intact (no burst or churn configured).
	if got := inner.bins[0]; !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("inner polled with %v, want [0 1]", got)
	}
	if c := j.Counts(); c.Skewed != 1 {
		t.Fatalf("Counts.Skewed = %d, want 1", c.Skewed)
	}
}

func TestDescribeJoinsPollsToEvents(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	j := New(inner, Config{Churn: ChurnConfig{CrashProb: 1}}, 2, rng.New(1))
	j.Query([]int{0, 1}) // poll 0: both crash, both silenced
	j.Query([]int{0})    // poll 1: already down, 0 silenced again

	if got := j.Describe(0); !strings.Contains(got, "poll 0") || !strings.Contains(got, "crashed") {
		t.Fatalf("Describe(0) = %q, want a crash event at poll 0", got)
	}
	if got := j.Describe(1); !strings.Contains(got, "poll 1") || !strings.Contains(got, "silent") {
		t.Fatalf("Describe(1) = %q, want a silenced event at poll 1", got)
	}
	if got := j.Describe(5); got != "no injected fault" {
		t.Fatalf("Describe(5) = %q, want no injected fault", got)
	}
	if got := j.Describe(-1); got != "no injected fault" {
		t.Fatalf("Describe(-1) = %q, want no injected fault", got)
	}
}

func TestFilterReusesScratchWithoutAliasing(t *testing.T) {
	inner := &recordQ{resp: query.Response{Kind: query.Active}}
	// Node 0 permanently down, others up: every poll drops exactly node 0.
	j := New(inner, Config{Churn: ChurnConfig{CrashProb: 0}}, 4, rng.New(1))
	j.down[0] = true
	j.cfg.Churn.RecoverProb = 0
	j.cfg.SkewProb = 0
	// Force the active path without churn draws by setting a burst chain
	// that never transitions and never misses in the good state.
	j.cfg.Burst.MissGood = 0
	j.cfg.Churn.CrashProb = 1e-300 // active but effectively never fires

	bin := []int{0, 1, 2, 3}
	j.Query(bin)
	if got := inner.bins[0]; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("inner polled with %v, want [1 2 3]", got)
	}
	// The caller's bin must be untouched.
	if !reflect.DeepEqual(bin, []int{0, 1, 2, 3}) {
		t.Fatalf("caller's bin mutated to %v", bin)
	}
}

func TestLinkBurstLoss(t *testing.T) {
	// PGoodBad=1 with defaulted MissBad=1: the chain enters bad on the
	// first step and every frame is lost while PBadGood=0 keeps it there.
	l := NewLink(BurstConfig{PGoodBad: 1}, rng.New(1))
	for i := 0; i < 5; i++ {
		if !l.Lost() {
			t.Fatalf("step %d: frame survived, want lost (bad state, MissBad=1)", i)
		}
	}
	// An inactive link loses nothing and consumes no meaningful state.
	quiet := NewLink(BurstConfig{}, rng.New(1))
	for i := 0; i < 5; i++ {
		if quiet.Lost() {
			t.Fatalf("step %d: inactive link lost a frame", i)
		}
	}
}
