package faults

import (
	"testing"

	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

// runBackcast executes one backcast session over ch and returns the poll
// responses for a fixed sequence of bins, plus the slot count.
func runBackcast(t *testing.T, ch radio.Channel, n int, positive map[int]bool, bins [][]int) ([]query.Response, int) {
	t.Helper()
	parts := make([]*pollcast.Participant, n)
	for i := range parts {
		parts[i] = &pollcast.Participant{ID: i, Positive: positive[i]}
	}
	sess, err := pollcast.NewSession(ch, n, parts, pollcast.Backcast, query.OnePlus)
	if err != nil {
		t.Fatal(err)
	}
	var out []query.Response
	for _, bin := range bins {
		out = append(out, sess.Query(bin))
	}
	return out, sess.Slots()
}

func TestInactiveMediumTransparent(t *testing.T) {
	const n = 8
	positive := map[int]bool{1: true, 5: true}
	bins := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 4, 6}}

	bare := radio.NewMedium(radio.Config{}, rng.New(7))
	bareResps, bareSlots := runBackcast(t, bare, n, positive, bins)

	faultR := rng.New(99)
	wrapped := NewMedium(radio.NewMedium(radio.Config{}, rng.New(7)), Config{}, n, faultR)
	wrapResps, wrapSlots := runBackcast(t, wrapped, n, positive, bins)

	for i := range bareResps {
		if bareResps[i].Kind != wrapResps[i].Kind {
			t.Fatalf("poll %d: wrapped Kind = %v, bare %v", i, wrapResps[i].Kind, bareResps[i].Kind)
		}
	}
	if bareSlots != wrapSlots {
		t.Fatalf("slots = %d wrapped vs %d bare", wrapSlots, bareSlots)
	}
	if got, want := faultR.Uint64(), rng.New(99).Uint64(); got != want {
		t.Fatal("inactive medium consumed randomness")
	}
	if !wrapped.Lossless() {
		t.Fatal("inactive wrapper over a lossless medium must report lossless")
	}
	if got, want := len(wrapped.TraceAttrs()), len(bare.TraceAttrs()); got != want {
		t.Fatalf("inactive wrapper added trace attrs: %d vs %d", got, want)
	}
}

func TestMediumChurnSilencesTransmitter(t *testing.T) {
	const n = 4
	positive := map[int]bool{0: true, 1: true, 2: true, 3: true}
	// Everybody crashes at the first BeginSlot: no votes reach the
	// channel, every poll reads Empty even though all nodes are positive.
	cfg := Config{Churn: ChurnConfig{CrashProb: 1}}
	med := NewMedium(radio.NewMedium(radio.Config{}, rng.New(3)), cfg, n, rng.New(4))
	resps, _ := runBackcast(t, med, n, positive, [][]int{{0, 1, 2, 3}})
	if resps[0].Kind != query.Empty {
		t.Fatalf("Kind = %v, want Empty (all transmitters crashed)", resps[0].Kind)
	}
	if med.Lossless() {
		t.Fatal("active wrapper must not report lossless")
	}
	// Silenced stays zero here: a crashed node's radio is off, so it never
	// hears the poll and never even attempts the vote it would have lost.
	if c := med.Counts(); c.Crashes != n {
		t.Fatalf("Counts = %+v, want %d crashes", c, n)
	}
}

func TestMediumBurstDropsLossyFrames(t *testing.T) {
	const n = 4
	positive := map[int]bool{0: true, 2: true}
	// All links bad from slot one, MissBad defaulted to 1: every vote and
	// HACK is dropped at the transmitter, so polls read Empty.
	cfg := Config{Burst: BurstConfig{PGoodBad: 1}}
	med := NewMedium(radio.NewMedium(radio.Config{}, rng.New(3)), cfg, n, rng.New(4))
	resps, _ := runBackcast(t, med, n, positive, [][]int{{0, 1, 2, 3}})
	if resps[0].Kind != query.Empty {
		t.Fatalf("Kind = %v, want Empty (all replies burst-lost)", resps[0].Kind)
	}
	if c := med.Counts(); c.Lost == 0 {
		t.Fatalf("Counts = %+v, want lost frames", c)
	}
}

func TestMediumSkewBlindsOnlyInitiator(t *testing.T) {
	const n = 4
	positive := map[int]bool{0: true, 1: true, 2: true, 3: true}
	// Every slot skewed: the initiator (receiver outside [0, n)) misses
	// every decoded frame. Backcast replies are votes the initiator must
	// decode, so every poll reads Empty; pollcast's CCA energy sensing
	// would survive, which is exactly the asymmetry skew models.
	cfg := Config{SkewProb: 1}
	med := NewMedium(radio.NewMedium(radio.Config{}, rng.New(3)), cfg, n, rng.New(4))
	resps, _ := runBackcast(t, med, n, positive, [][]int{{0, 1, 2, 3}})
	if resps[0].Kind != query.Empty {
		t.Fatalf("Kind = %v, want Empty (initiator's window skewed)", resps[0].Kind)
	}
	if c := med.Counts(); c.Skewed == 0 {
		t.Fatalf("Counts = %+v, want skewed observations", c)
	}
}
