package faults

import (
	"strings"
	"testing"

	"tcast/internal/binning"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// decodeQ always decodes the first bin member, so every poll gives the
// corruption process something to corrupt.
type decodeQ struct{}

func (decodeQ) Query(bin []int) query.Response {
	return query.Response{Kind: query.Decoded, DecodedID: bin[0]}
}

func (decodeQ) Traits() query.Traits {
	return query.Traits{Model: query.TwoPlus, CaptureEffect: true}
}

func TestParseSpecCorrupt(t *testing.T) {
	cfg, err := ParseSpec("corrupt=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DecodeCorruptProb != 0.25 {
		t.Fatalf("DecodeCorruptProb = %v, want 0.25", cfg.DecodeCorruptProb)
	}
	if !cfg.Active() {
		t.Fatal("corrupt-only config should be active")
	}
	if _, err := ParseSpec("corrupt=1.5"); err == nil {
		t.Fatal("corrupt=1.5 should be rejected")
	}
}

func TestCorruptDecodeForgesID(t *testing.T) {
	const n = 32
	j := New(decodeQ{}, Config{DecodeCorruptProb: 1}, n, rng.New(7))
	resp := j.Query([]int{3, 4})
	if resp.Kind != query.Decoded {
		t.Fatalf("response kind = %v, want decoded", resp.Kind)
	}
	if resp.DecodedID < 0 || resp.DecodedID >= n {
		t.Fatalf("forged ID %d outside population [0,%d)", resp.DecodedID, n)
	}
	if c := j.Counts().Corrupted; c != 1 {
		t.Fatalf("Counts().Corrupted = %d, want 1", c)
	}
	if desc := j.Describe(0); !strings.Contains(desc, "decode corrupted") {
		t.Fatalf("Describe(0) = %q, want corruption mention", desc)
	}
}

func TestCorruptDecodeLeavesNonDecodesAlone(t *testing.T) {
	for _, kind := range []query.Kind{query.Empty, query.Active, query.Collision} {
		j := New(&recordQ{resp: query.Response{Kind: kind}}, Config{DecodeCorruptProb: 1}, 8, rng.New(1))
		if resp := j.Query([]int{0}); resp.Kind != kind {
			t.Fatalf("%v response changed to %v", kind, resp.Kind)
		}
		if c := j.Counts().Corrupted; c != 0 {
			t.Fatalf("Counts().Corrupted = %d, want 0", c)
		}
	}
}

// Ledger soundness under corrupt decodes: whatever IDs the corruption
// process forges, UpperBound must never grow across an Apply — a ledger can
// only narrow. Before the Knowledge guard, a forged decode naming a
// non-candidate incremented Confirmed without shrinking the candidate set,
// growing the bound past ground truth.
func TestCorruptDecodeLedgerUpperBoundMonotone(t *testing.T) {
	const n, t2, rounds = 48, 6, 12
	guarded := 0
	for seed := uint64(1); seed <= 60; seed++ {
		r := rng.New(seed)
		x := int(seed % 20)
		ch, _ := fastsim.RandomPositives(n, x, fastsim.TwoPlusConfig(), r.Split(1))
		j := New(ch, Config{DecodeCorruptProb: 0.6}, n, r.Split(9))
		k := query.NewKnowledge(n, t2)
		algr := r.Split(2)
		for round := 0; round < rounds; round++ {
			if _, decided := k.Decision(); decided {
				break
			}
			k.StartRound()
			bins := binning.NonEmpty(binning.RandomPartition(k.Candidates.Members(), 2*t2, algr))
			for _, bin := range bins {
				resp := j.Query(bin)
				if resp.Kind == query.Decoded && !k.Candidates.Contains(resp.DecodedID) {
					guarded++
				}
				before := k.UpperBound()
				k.Apply(bin, resp, j.Traits())
				if after := k.UpperBound(); after > before {
					t.Fatalf("seed %d: UpperBound grew %d -> %d on %v response", seed, before, after, resp.Kind)
				}
				if _, decided := k.Decision(); decided {
					break
				}
			}
		}
	}
	if guarded == 0 {
		t.Fatal("property never exercised the non-candidate decode guard; raise rates or rounds")
	}
}
