package faults

import (
	"time"

	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// Medium is the packet-level fault layer: a radio.Channel middleware that
// degrades an inner medium with the same three processes the querier
// Injector models, but at slot granularity — per-node Gilbert–Elliott
// chains and churn chains step once per slot, a crashed node's
// transmissions never reach the channel and its radio hears nothing, a
// bad-state node's votes and HACKs (the lossy frame kinds) are dropped at
// the transmitter, and a skewed slot makes the initiator's radio miss the
// decoded frame while still sensing its energy.
//
// Participants carry IDs in [0, n); skew applies only to receivers
// outside that range — the initiator, whose listen window the skew
// models. All draws come from the dedicated stream r; an inactive config
// makes the wrapper a transparent pass-through that consumes no
// randomness, so zero-rate faulted runs stay byte-identical to bare ones.
type Medium struct {
	inner radio.Channel
	cfg   Config
	r     *rng.Source
	n     int

	bad    []bool
	down   []bool
	skewed bool
	counts Counts
}

// NewMedium wraps inner with fault injection over participants {0..n-1}.
func NewMedium(inner radio.Channel, cfg Config, n int, r *rng.Source) *Medium {
	return &Medium{
		inner: inner, cfg: cfg.normalized(), r: r, n: n,
		bad:  make([]bool, n),
		down: make([]bool, n),
	}
}

// BeginSlot advances the fault chains one slot and opens the inner slot.
func (m *Medium) BeginSlot() {
	m.inner.BeginSlot()
	if !m.cfg.Active() {
		return
	}
	for id := 0; id < m.n; id++ {
		if m.down[id] {
			if m.r.Bernoulli(m.cfg.Churn.RecoverProb) {
				m.down[id] = false
				m.counts.Recovers++
			}
		} else if m.r.Bernoulli(m.cfg.Churn.CrashProb) {
			m.down[id] = true
			m.counts.Crashes++
		}
		if m.bad[id] {
			if m.r.Bernoulli(m.cfg.Burst.PBadGood) {
				m.bad[id] = false
			}
		} else if m.r.Bernoulli(m.cfg.Burst.PGoodBad) {
			m.bad[id] = true
		}
	}
	m.skewed = m.cfg.SkewProb > 0 && m.r.Bernoulli(m.cfg.SkewProb)
}

// Transmit forwards f unless the fault layer swallows it: crashed
// transmitters send nothing, and lossy frames from bad-state links are
// dropped before they reach the channel.
func (m *Medium) Transmit(f radio.Frame) {
	if f.Src >= 0 && f.Src < m.n {
		if m.down[f.Src] {
			m.counts.Silenced++
			return
		}
		if f.Lossy() {
			miss := m.cfg.Burst.MissGood
			if m.bad[f.Src] {
				miss = m.cfg.Burst.MissBad
			}
			if miss > 0 && m.r.Bernoulli(miss) {
				m.counts.Lost++
				return
			}
		}
	}
	m.inner.Transmit(f)
}

// Observe resolves the slot for one receiver. A crashed participant's
// radio is off — it neither senses energy nor decodes. A skewed slot
// strips the decoded frame from the initiator's observation (receivers
// outside the participant range) but keeps the energy reading: the window
// opened late, after the preamble.
func (m *Medium) Observe(receiver int) radio.Observation {
	if receiver >= 0 && receiver < m.n && m.down[receiver] {
		return radio.Observation{}
	}
	obs := m.inner.Observe(receiver)
	if m.skewed && (receiver < 0 || receiver >= m.n) && obs.Frame != nil {
		m.counts.Skewed++
		obs.Frame = nil
		obs.Superposed = 0
	}
	return obs
}

// EndSlot closes the inner slot.
func (m *Medium) EndSlot() { m.inner.EndSlot() }

// Slot forwards the inner slot counter.
func (m *Medium) Slot() int { return m.inner.Slot() }

// Elapsed forwards the inner air-time clock.
func (m *Medium) Elapsed() time.Duration { return m.inner.Elapsed() }

// Lossless reports whether the composed channel can still neither drop a
// reply nor fake activity: the inner medium's own report vetoed by any
// active fault process.
func (m *Medium) Lossless() bool { return m.inner.Lossless() && !m.cfg.Active() }

// Counts returns the aggregate fault activity so far.
func (m *Medium) Counts() Counts { return m.counts }

// TraceAttrs forwards the inner medium's annotations, appending the fault
// tallies when the config is active (an inactive wrapper contributes
// nothing, keeping zero-rate traces byte-identical).
func (m *Medium) TraceAttrs() []trace.Attr {
	attrs := m.inner.TraceAttrs()
	if !m.cfg.Active() {
		return attrs
	}
	return append(attrs,
		trace.IntAttr("fault_skewed", m.counts.Skewed),
		trace.IntAttr("fault_lost", m.counts.Lost),
		trace.IntAttr("fault_silenced", m.counts.Silenced),
		trace.IntAttr("fault_crashes", m.counts.Crashes),
		trace.IntAttr("fault_recovers", m.counts.Recovers),
	)
}
