// Package faults is a deterministic fault-injection layer for the query
// and radio substrates: it degrades an otherwise well-behaved substrate
// with the real-radio pathologies the paper's testbed exhibits but the
// i.i.d. per-copy loss model cannot produce — bursty Gilbert–Elliott link
// loss (good/bad channel states per node), node churn (crash/recover
// transitions that silence a node's votes and HACKs mid-session), and
// initiator-side slot skew (a poll whose listen window opens late and
// misses the reply symbols entirely).
//
// Every fault draw comes from a dedicated rng.Source stream handed to the
// injector at construction, never from the substrate's own stream, so a
// faulted run is byte-reproducible and composes with the metrics, trace
// and audit layers in any stacking order. A configured-but-all-zero
// injector consumes no randomness at all and forwards bins untouched,
// which makes a zero-rate faulted run byte-identical to a bare one — the
// reproducibility contract the experiment harness's property test pins.
//
// The Injector wraps a query.Querier (any substrate); Medium wraps a
// radio.Channel for packet-level injection below a pollcast session or
// mote firmware.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// BurstConfig is the per-node Gilbert–Elliott link model. Each node's
// link is a two-state Markov chain stepped once per poll (Injector) or
// per slot (Medium); replies sent while the chain is in the bad state are
// lost with probability MissBad, clustering losses into bursts of mean
// length 1/PBadGood steps.
type BurstConfig struct {
	// PGoodBad is the per-step good→bad transition probability.
	PGoodBad float64
	// PBadGood is the per-step bad→good transition probability; the mean
	// bad-state dwell (burst length) is 1/PBadGood steps.
	PBadGood float64
	// MissGood is the per-reply loss probability while the link is good
	// (residual i.i.d. loss; usually 0).
	MissGood float64
	// MissBad is the per-reply loss probability while the link is bad.
	// New defaults it to 1 when the chain is active (PGoodBad > 0) and
	// MissBad is left zero, so configuring a burst process without an
	// explicit loss rate does what it says.
	MissBad float64
}

// Active reports whether the burst model can lose a reply.
func (b BurstConfig) Active() bool { return b.PGoodBad > 0 || b.MissGood > 0 }

// ChurnConfig is the per-node crash/recover model: an up node crashes
// with CrashProb per step, a down node recovers with RecoverProb per
// step. A down node hears nothing and sends nothing.
type ChurnConfig struct {
	CrashProb   float64
	RecoverProb float64
}

// Active reports whether churn can silence a node.
func (c ChurnConfig) Active() bool { return c.CrashProb > 0 }

// Config bundles the three fault processes. The zero value injects
// nothing and draws nothing.
type Config struct {
	Burst BurstConfig
	Churn ChurnConfig
	// SkewProb is the per-poll probability that the initiator's listen
	// window opens late and misses the first reply symbols — the whole
	// reply is lost and the poll reads as silence.
	SkewProb float64
	// DecodeCorruptProb is the probability that a decoded frame's ID
	// field is corrupted in flight: the initiator decodes a uniformly
	// random node ID instead of the replier's. The forged ID may name a
	// negative or already-eliminated node — the audit layer's
	// corrupt_decode class — so the ledger must not take it at face
	// value. Only fires on 2+ substrates (there is nothing to corrupt in
	// a 1+ activity indication).
	DecodeCorruptProb float64
}

// Active reports whether any fault process can fire. An inactive config
// makes every fault layer a transparent pass-through that consumes no
// randomness.
func (c Config) Active() bool {
	return c.Burst.Active() || c.Churn.Active() || c.SkewProb > 0 || c.DecodeCorruptProb > 0
}

// normalized applies the documented defaulting: an active burst chain
// with no explicit bad-state loss rate loses every reply in the bad
// state.
func (c Config) normalized() Config {
	if c.Burst.PGoodBad > 0 && c.Burst.MissBad == 0 {
		c.Burst.MissBad = 1
	}
	return c
}

// ParseSpec parses the -faults flag syntax: a comma-separated key=value
// list. Keys:
//
//	burst=L     mean bad-state dwell in steps (PBadGood = 1/L)
//	frac=F      stationary bad fraction in [0, 1) fixing PGoodBad
//	            (default 0.2 when burst is set)
//	missgood=P  per-reply loss in the good state (default 0)
//	missbad=P   per-reply loss in the bad state (default 1)
//	churn=P     per-step crash probability
//	recover=P   per-step recover probability (default 0.1 when churn set)
//	skew=P      per-poll initiator listen-window miss probability
//	corrupt=P   per-decode probability the decoded ID is corrupted to a
//	            uniformly random node (2+ substrates only)
//
// The empty string parses to the zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	var burstLen, frac float64 = 0, -1
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: %q is not key=value", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: %s: %w", key, err)
		}
		switch key {
		case "burst":
			burstLen = f
		case "frac":
			frac = f
		case "missgood":
			cfg.Burst.MissGood = f
		case "missbad":
			cfg.Burst.MissBad = f
		case "churn":
			cfg.Churn.CrashProb = f
		case "recover":
			cfg.Churn.RecoverProb = f
		case "skew":
			cfg.SkewProb = f
		case "corrupt":
			cfg.DecodeCorruptProb = f
		default:
			return Config{}, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	if burstLen < 0 || (burstLen > 0 && burstLen < 1) {
		return Config{}, fmt.Errorf("faults: burst length %v must be >= 1 (or 0 for none)", burstLen)
	}
	if burstLen > 0 {
		if frac < 0 {
			frac = 0.2
		}
		if frac >= 1 {
			return Config{}, fmt.Errorf("faults: bad fraction %v must be in [0, 1)", frac)
		}
		cfg.Burst.PBadGood = 1 / burstLen
		cfg.Burst.PGoodBad = frac / (1 - frac) * cfg.Burst.PBadGood
	} else if frac >= 0 {
		return Config{}, fmt.Errorf("faults: frac without burst")
	}
	if cfg.Churn.Active() && cfg.Churn.RecoverProb == 0 {
		cfg.Churn.RecoverProb = 0.1
	}
	for _, p := range []float64{cfg.Burst.MissGood, cfg.Burst.MissBad, cfg.Churn.CrashProb, cfg.Churn.RecoverProb, cfg.SkewProb, cfg.DecodeCorruptProb} {
		if p < 0 || p > 1 {
			return Config{}, fmt.Errorf("faults: probability %v outside [0, 1]", p)
		}
	}
	return cfg, nil
}

// PollFault records every fault that touched one poll: the step's churn
// transitions plus the bin members this poll silenced. It is the join key
// for audit attribution — a wrong decision's causal poll looks up its
// PollFault to name the injected fault that caused it.
type PollFault struct {
	// Poll is the 0-based poll index within the session.
	Poll int
	// Skewed reports that the initiator's listen window missed the reply
	// and the response was forced to silence.
	Skewed bool
	// Lost lists the bin members whose reply the bursty link dropped.
	Lost []int
	// Silenced lists the bin members that were down (crashed) when
	// polled.
	Silenced []int
	// Crashed and Recovered list the churn transitions drawn at this
	// poll's step, whether or not the nodes were in the bin.
	Crashed, Recovered []int
	// CorruptDecode reports that the decoded frame's ID field was
	// corrupted; ForgedID is the ID the initiator decoded instead.
	CorruptDecode bool
	ForgedID      int
}

// touched reports whether anything observable happened at this poll.
func (f PollFault) touched() bool {
	return f.Skewed || f.CorruptDecode || len(f.Lost) > 0 || len(f.Silenced) > 0 ||
		len(f.Crashed) > 0 || len(f.Recovered) > 0
}

// String renders the event for audit attribution.
func (f PollFault) String() string {
	var parts []string
	if f.Skewed {
		parts = append(parts, "skewed listen window")
	}
	if f.CorruptDecode {
		parts = append(parts, fmt.Sprintf("decode corrupted to ID %d", f.ForgedID))
	}
	if len(f.Lost) > 0 {
		parts = append(parts, fmt.Sprintf("burst-lost replies %v", f.Lost))
	}
	if len(f.Silenced) > 0 {
		parts = append(parts, fmt.Sprintf("crashed nodes %v silent", f.Silenced))
	}
	if len(f.Crashed) > 0 {
		parts = append(parts, fmt.Sprintf("crashed %v", f.Crashed))
	}
	if len(f.Recovered) > 0 {
		parts = append(parts, fmt.Sprintf("recovered %v", f.Recovered))
	}
	if len(parts) == 0 {
		return "no fault"
	}
	return strings.Join(parts, "; ")
}

// Counts aggregates the injector's fault activity for trace annotation.
type Counts struct {
	Polls     int // polls seen
	Skewed    int // polls forced to silence by listen-window skew
	Lost      int // bin memberships dropped by the burst process
	Silenced  int // bin memberships silenced by churn
	Crashes   int // crash transitions
	Recovers  int // recover transitions
	Corrupted int // decoded IDs corrupted in flight
}

// Injector wraps a query.Querier and degrades its polls. It implements
// query.Wrapper, so the observability layers compose with it in any
// order; it is stacked directly above the substrate (below metrics, audit
// and trace), so the auditor grades the degraded responses against
// ground truth and attributes the resulting wrong decisions.
//
// Mechanically, a faulted poll filters the queried bin before it reaches
// the substrate: a down node never hears the poll, and a node whose link
// is in the bad state loses its reply with probability MissBad. Only
// positive nodes reply on every substrate, so removing a member from the
// bin is observationally identical to losing its reply — and it works
// without the injector knowing any predicate values. Skew fires after the
// substrate answers and forces the response to silence.
type Injector struct {
	q   query.Querier
	cfg Config
	r   *rng.Source
	n   int

	bad     []bool // Gilbert–Elliott state per node (true = bad)
	down    []bool // churn state per node (true = crashed)
	poll    int
	scratch []int
	events  []PollFault
	counts  Counts
}

// New wraps q with a fault injector over the population {0..n-1}, drawing
// every fault from r — a stream dedicated to the injector (derive it with
// Split), never shared with the substrate. An inactive cfg yields a
// transparent injector that consumes no randomness.
func New(q query.Querier, cfg Config, n int, r *rng.Source) *Injector {
	return &Injector{
		q: q, cfg: cfg.normalized(), r: r, n: n,
		bad:  make([]bool, n),
		down: make([]bool, n),
	}
}

// Query implements query.Querier: advance the fault processes one step,
// filter the bin, forward the poll, then apply listen-window skew.
func (j *Injector) Query(bin []int) query.Response {
	pf := PollFault{Poll: j.poll}
	j.poll++
	j.counts.Polls++

	effective := bin
	if j.cfg.Active() {
		j.step(&pf)
		effective = j.filter(bin, &pf)
	}
	resp := j.q.Query(effective)
	if j.cfg.SkewProb > 0 && j.r.Bernoulli(j.cfg.SkewProb) {
		pf.Skewed = true
		j.counts.Skewed++
		resp = query.Response{Kind: query.Empty}
	}
	if j.cfg.DecodeCorruptProb > 0 && resp.Kind == query.Decoded &&
		j.r.Bernoulli(j.cfg.DecodeCorruptProb) {
		// Corrupt the frame's ID field: the initiator decodes a uniform
		// random node, which may be negative or already eliminated.
		pf.CorruptDecode = true
		pf.ForgedID = j.r.Intn(j.n)
		j.counts.Corrupted++
		resp.DecodedID = pf.ForgedID
	}
	if pf.touched() {
		j.events = append(j.events, pf)
	}
	return resp
}

// step advances every node's churn and link chains by one poll.
func (j *Injector) step(pf *PollFault) {
	for id := 0; id < j.n; id++ {
		if j.down[id] {
			if j.r.Bernoulli(j.cfg.Churn.RecoverProb) {
				j.down[id] = false
				j.counts.Recovers++
				pf.Recovered = append(pf.Recovered, id)
			}
		} else if j.r.Bernoulli(j.cfg.Churn.CrashProb) {
			j.down[id] = true
			j.counts.Crashes++
			pf.Crashed = append(pf.Crashed, id)
		}
		if j.bad[id] {
			if j.r.Bernoulli(j.cfg.Burst.PBadGood) {
				j.bad[id] = false
			}
		} else if j.r.Bernoulli(j.cfg.Burst.PGoodBad) {
			j.bad[id] = true
		}
	}
}

// filter returns bin minus this poll's casualties. The input slice is
// returned untouched when nothing drops; otherwise the survivors land in
// a reused scratch buffer (substrates consume the bin synchronously).
func (j *Injector) filter(bin []int, pf *PollFault) []int {
	eff := bin
	copied := false
	for i, id := range bin {
		drop := false
		if id >= 0 && id < j.n {
			switch {
			case j.down[id]:
				drop = true
				j.counts.Silenced++
				pf.Silenced = append(pf.Silenced, id)
			case j.bad[id] && j.r.Bernoulli(j.cfg.Burst.MissBad):
				drop = true
				j.counts.Lost++
				pf.Lost = append(pf.Lost, id)
			case !j.bad[id] && j.r.Bernoulli(j.cfg.Burst.MissGood):
				drop = true
				j.counts.Lost++
				pf.Lost = append(pf.Lost, id)
			}
		}
		switch {
		case drop && !copied:
			eff = append(j.scratch[:0], bin[:i]...)
			copied = true
		case !drop && copied:
			eff = append(eff, id)
		}
	}
	if copied {
		j.scratch = eff
	}
	return eff
}

// Traits implements query.Querier.
func (j *Injector) Traits() query.Traits { return j.q.Traits() }

// Unwrap implements query.Wrapper, so audit discovers the substrate's
// ground truth through the injector and the trace layer finds the
// substrate's slot meter below it.
func (j *Injector) Unwrap() query.Querier { return j.q }

// TraceRound forwards the algorithms' round-boundary hook down the chain.
func (j *Injector) TraceRound(round int) {
	if rt, ok := j.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(round)
	}
}

// Lossless implements the audit layer's conjunctive losslessness probe: an
// active injector can drop replies, so the bound invariants must not be
// enforced above it even when the substrate underneath is lossless.
func (j *Injector) Lossless() bool { return !j.cfg.Active() }

// TraceAttrs implements trace.Annotator. An inactive injector contributes
// nothing, keeping zero-rate faulted traces byte-identical to bare ones.
func (j *Injector) TraceAttrs() []trace.Attr {
	if !j.cfg.Active() {
		return nil
	}
	return []trace.Attr{
		trace.IntAttr("fault_polls", j.counts.Polls),
		trace.IntAttr("fault_skewed", j.counts.Skewed),
		trace.IntAttr("fault_lost", j.counts.Lost),
		trace.IntAttr("fault_silenced", j.counts.Silenced),
		trace.IntAttr("fault_crashes", j.counts.Crashes),
		trace.IntAttr("fault_recovers", j.counts.Recovers),
		trace.IntAttr("fault_corrupted", j.counts.Corrupted),
	}
}

// Counts returns the aggregate fault activity so far.
func (j *Injector) Counts() Counts { return j.counts }

// Events returns the per-poll fault log: one entry per poll that a fault
// touched, in poll order.
func (j *Injector) Events() []PollFault { return j.events }

// Describe names the fault event at the given poll, for joining an audit
// verdict's causal poll to its cause. Polls no fault touched — and
// out-of-range indices such as the -1 of an unattributed verdict — read
// "no injected fault".
func (j *Injector) Describe(poll int) string {
	i := sort.Search(len(j.events), func(i int) bool { return j.events[i].Poll >= poll })
	if i < len(j.events) && j.events[i].Poll == poll {
		return fmt.Sprintf("poll %d: %s", poll, j.events[i])
	}
	return "no injected fault"
}

// Link is the single-channel form of the Gilbert–Elliott model, for
// substrates without per-node identity (the CSMA baseline's contention
// channel): one chain, stepped once per Lost call — i.e. once per reply
// opportunity, the same clock the Injector steps per poll.
type Link struct {
	cfg BurstConfig
	r   *rng.Source
	bad bool
}

// NewLink creates a single Gilbert–Elliott link drawing from r.
func NewLink(cfg BurstConfig, r *rng.Source) *Link {
	c := Config{Burst: cfg}.normalized()
	return &Link{cfg: c.Burst, r: r}
}

// Lost advances the chain one step and reports whether a frame sent this
// step is lost.
func (l *Link) Lost() bool {
	if l.bad {
		if l.r.Bernoulli(l.cfg.PBadGood) {
			l.bad = false
		}
	} else if l.r.Bernoulli(l.cfg.PGoodBad) {
		l.bad = true
	}
	if l.bad {
		return l.r.Bernoulli(l.cfg.MissBad)
	}
	return l.r.Bernoulli(l.cfg.MissGood)
}
