package tcast

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestNetworkQueryCorrectness(t *testing.T) {
	positives := []int{3, 17, 42, 99}
	nw, err := NewNetwork(128, positives, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 128 || nw.Positives() != 4 {
		t.Fatalf("network shape wrong: n=%d x=%d", nw.N(), nw.Positives())
	}
	for _, alg := range []Algorithm{TwoTBins(), ExpIncrease(), ABNS(1), ABNS(2), ProbABNS()} {
		for _, th := range []int{1, 4, 5, 64} {
			res, err := nw.Query(th, alg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Decision != (4 >= th) {
				t.Fatalf("%s t=%d: decision %v", alg.Name(), th, res.Decision)
			}
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewNetwork(4, []int{4}); err == nil {
		t.Error("out-of-range positive accepted")
	}
	if _, err := NewNetwork(4, nil, WithCaptureBeta(2)); err == nil {
		t.Error("beta=2 accepted")
	}
	if _, err := NewNetwork(4, nil, WithMissProb(1)); err == nil {
		t.Error("miss=1 accepted")
	}
}

func TestNetworkDeterministicWithSeed(t *testing.T) {
	build := func() *Network {
		nw, err := NewNetwork(64, []int{1, 2, 3}, WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	a, b := build(), build()
	for i := 0; i < 5; i++ {
		ra, err := a.Query(3, TwoTBins())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Query(3, TwoTBins())
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("session %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestTwoPlusOption(t *testing.T) {
	nw, err := NewNetwork(64, []int{5}, WithSeed(2), WithTwoPlus())
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Query(1, TwoTBins())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision {
		t.Fatal("2+ query wrong")
	}
}

func TestQueryOracle(t *testing.T) {
	nw, err := NewNetwork(128, nil, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.QueryOracle(16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision || res.Queries != 1 {
		t.Fatalf("oracle on empty network: %+v", res)
	}
}

func TestMissProbCanFlipDecision(t *testing.T) {
	// Sanity: lossy radio still runs to completion; decisions may be
	// wrong but never error.
	nw, err := NewNetwork(32, []int{1, 2, 3, 4}, WithSeed(4), WithMissProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := nw.Query(4, TwoTBins()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDetector(t *testing.T) {
	// Clearly separated bimodal deployment: quiet ~8, active ~96.
	det, err := NewDetector(128, 8, 2, 96, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if det.Repeats() < 1 {
		t.Fatal("no repeats")
	}
	quietNet, _ := NewNetwork(128, []int{5, 9, 77, 30, 41, 2, 118, 64}, WithSeed(5))
	correctQuiet := 0
	for i := 0; i < 50; i++ {
		activity, q := det.Detect(quietNet)
		if q != det.Repeats() {
			t.Fatalf("query count %d != repeats %d", q, det.Repeats())
		}
		if !activity {
			correctQuiet++
		}
	}
	if correctQuiet < 45 {
		t.Fatalf("quiet network misdetected %d/50 times", 50-correctQuiet)
	}

	var many []int
	for i := 0; i < 96; i++ {
		many = append(many, i)
	}
	activeNet, _ := NewNetwork(128, many, WithSeed(6))
	correctActive := 0
	for i := 0; i < 50; i++ {
		if activity, _ := det.Detect(activeNet); activity {
			correctActive++
		}
	}
	if correctActive < 45 {
		t.Fatalf("active network misdetected %d/50 times", 50-correctActive)
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(128, 60, 10, 70, 10, 0.05); err == nil {
		t.Error("overlapping modes accepted")
	}
	if _, err := NewDetector(128, 8, 2, 96, 4, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestQueryAtMostBetweenMonotone(t *testing.T) {
	nw, err := NewNetwork(64, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := nw.QueryAtMost(10, nil); err != nil || !res.Decision {
		t.Fatalf("AtMost(10) = %+v, %v", res, err)
	}
	if res, err := nw.QueryAtMost(9, nil); err != nil || res.Decision {
		t.Fatalf("AtMost(9) = %+v, %v", res, err)
	}
	if res, err := nw.QueryBetween(8, 12, nil); err != nil || !res.Decision {
		t.Fatalf("Between(8,12) = %+v, %v", res, err)
	}
	if res, err := nw.QueryBetween(11, 20, nil); err != nil || res.Decision {
		t.Fatalf("Between(11,20) = %+v, %v", res, err)
	}
	res, err := nw.QueryMonotone(func(c int) bool { return c*3 >= 24 }, nil)
	if err != nil || !res.Decision {
		t.Fatalf("Monotone(3c>=24 with x=10) = %+v, %v", res, err)
	}
}

func TestIdentify(t *testing.T) {
	want := []int{3, 17, 42, 99}
	nw, err := NewNetwork(128, want, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	got, queries, err := nw.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Identify = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Identify = %v, want %v", got, want)
		}
	}
	if queries <= 0 || queries >= 128 {
		t.Fatalf("queries = %d, expected sub-linear positive cost", queries)
	}
}

func TestEstimateCount(t *testing.T) {
	positives := make([]int, 32)
	for i := range positives {
		positives[i] = i * 4
	}
	nw, err := NewNetwork(128, positives, WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	est, queries := nw.EstimateCount(0)
	if est < 8 || est > 128 {
		t.Fatalf("estimate = %v for x=32, wildly off", est)
	}
	if queries <= 0 {
		t.Fatal("no queries spent")
	}
}

func TestSymmetricBimodalReexport(t *testing.T) {
	bi := SymmetricBimodal(128, 16, 0)
	tl, tr := bi.Boundaries()
	if !(tl < tr) {
		t.Fatalf("boundaries wrong: %v %v", tl, tr)
	}
}

func TestConcurrentQueries(t *testing.T) {
	nw, err := NewNetwork(64, []int{1, 5, 9, 13, 17}, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := nw.Query(5, ProbABNS())
				if err != nil {
					errs[g] = err
					return
				}
				if !res.Decision {
					errs[g] = fmt.Errorf("wrong decision")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickPublicAPICorrect(t *testing.T) {
	f := func(seed uint64, nRaw, tRaw, xRaw uint8) bool {
		n := int(nRaw%48) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		positives := make([]int, x)
		for i := range positives {
			positives[i] = i
		}
		nw, err := NewNetwork(n, positives, WithSeed(seed))
		if err != nil {
			return false
		}
		res, err := nw.Query(th, ProbABNS())
		if err != nil {
			return false
		}
		return res.Decision == (x >= th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
