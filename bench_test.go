package tcast

// One benchmark per paper table/figure: each iteration regenerates the
// experiment's data at reduced trial counts (the CLI `tcastfigs` runs the
// paper-scale versions). Micro-benchmarks for the primitives follow.

import (
	"testing"

	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/experiment"
	"tcast/internal/fastsim"
	"tcast/internal/motelab"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

// benchFigure regenerates one registered experiment per iteration.
func benchFigure(b *testing.B, id string, runs int) {
	e, err := experiment.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiment.Options{Runs: runs, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchFigure(b, "fig1", 20) }
func BenchmarkFig2(b *testing.B)   { benchFigure(b, "fig2", 20) }
func BenchmarkFig3(b *testing.B)   { benchFigure(b, "fig3", 20) }
func BenchmarkFig4(b *testing.B)   { benchFigure(b, "fig4", 4) }
func BenchmarkFig5(b *testing.B)   { benchFigure(b, "fig5", 20) }
func BenchmarkFig6(b *testing.B)   { benchFigure(b, "fig6", 20) }
func BenchmarkFig7(b *testing.B)   { benchFigure(b, "fig7", 20) }
func BenchmarkFig8(b *testing.B)   { benchFigure(b, "fig8", 1) }
func BenchmarkFig9(b *testing.B)   { benchFigure(b, "fig9", 20) }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "fig10", 1) }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11", 20) }
func BenchmarkTabErr(b *testing.B) { benchFigure(b, "tab-err", 4) }

func BenchmarkAblationCapture(b *testing.B)  { benchFigure(b, "abl-capture", 10) }
func BenchmarkAblationVariants(b *testing.B) { benchFigure(b, "abl-variants", 10) }

func BenchmarkExtEnergy(b *testing.B)   { benchFigure(b, "ext-energy", 10) }
func BenchmarkExtBattery(b *testing.B)  { benchFigure(b, "ext-battery", 10) }
func BenchmarkExtTime(b *testing.B)     { benchFigure(b, "ext-time", 10) }
func BenchmarkExtMultihop(b *testing.B) { benchFigure(b, "ext-multihop", 2) }
func BenchmarkExtCount(b *testing.B)    { benchFigure(b, "ext-count", 10) }
func BenchmarkExtKPlus(b *testing.B)    { benchFigure(b, "ext-kplus", 10) }

// --- primitive micro-benchmarks ---

func benchAlgorithm(b *testing.B, alg core.Algorithm, n, t, x int, cfg fastsim.Config) {
	root := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		if _, err := alg.Run(ch, n, t, r.Split(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery2tBins(b *testing.B) {
	benchAlgorithm(b, core.TwoTBins{}, 128, 16, 16, fastsim.DefaultConfig())
}

func BenchmarkQuery2tBinsTwoPlus(b *testing.B) {
	benchAlgorithm(b, core.TwoTBins{}, 128, 16, 16, fastsim.TwoPlusConfig())
}

func BenchmarkQueryExpIncrease(b *testing.B) {
	benchAlgorithm(b, core.ExpIncrease{}, 128, 16, 16, fastsim.DefaultConfig())
}

func BenchmarkQueryABNS(b *testing.B) {
	benchAlgorithm(b, core.ABNS{P0: 2}, 128, 16, 16, fastsim.DefaultConfig())
}

func BenchmarkQueryProbABNS(b *testing.B) {
	benchAlgorithm(b, core.ProbABNS{}, 128, 16, 16, fastsim.DefaultConfig())
}

func BenchmarkQueryLargeNetwork(b *testing.B) {
	benchAlgorithm(b, core.ProbABNS{}, 4096, 64, 80, fastsim.DefaultConfig())
}

func BenchmarkBaselineCSMA(b *testing.B) {
	root := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		pos := bitset.New(128)
		for _, id := range r.Split(1).Sample(128, 32) {
			pos.Add(id)
		}
		baseline.CSMA{}.Run(128, 16, pos, r.Split(2))
	}
}

func BenchmarkBaselineSequential(b *testing.B) {
	root := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		pos := bitset.New(128)
		for _, id := range r.Split(1).Sample(128, 32) {
			pos.Add(id)
		}
		baseline.Sequential{}.Run(128, 16, pos, r.Split(2))
	}
}

// BenchmarkPacketLevel runs 2tBins over the full packet radio (backcast),
// the abl-packet validation substrate.
func BenchmarkPacketLevel(b *testing.B) {
	root := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		parts := make([]*pollcast.Participant, 64)
		for id := range parts {
			parts[id] = &pollcast.Participant{ID: id}
		}
		for _, id := range r.Split(1).Sample(64, 8) {
			parts[id].Positive = true
		}
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		sess, err := pollcast.NewSession(med, 1<<16, parts, pollcast.Backcast, query.OnePlus)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (core.TwoTBins{}).Run(sess, 64, 8, r.Split(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoteTestbed runs one full mote-lab batch per iteration.
func BenchmarkMoteTestbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab, err := motelab.New(motelab.Config{Participants: 12, MissProb: 0.05, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lab.RunBatch(4, 6, 10); err != nil {
			b.Fatal(err)
		}
		lab.Close()
	}
}

// BenchmarkDetector measures the O(1) bimodal detector.
func BenchmarkDetector(b *testing.B) {
	det, err := NewDetector(128, 8, 2, 96, 4, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	var positives []int
	for i := 0; i < 96; i++ {
		positives = append(positives, i)
	}
	nw, err := NewNetwork(128, positives, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(nw)
	}
}
