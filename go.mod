module tcast

go 1.22
