// Intruder classification: the Section II-C use case — "querying of the
// neighborhood for classification of an intruder (say as a soldier, car,
// or tank) by counting the detections in the neighborhood".
//
// Strategy: a cheap O(log n) cardinality estimate picks the candidate
// class, one exact threshold query confirms its boundary, and — only for
// real events — adaptive group testing identifies the witnesses for the
// report. Every step rides the same RCD group-poll primitive.
package main

import (
	"fmt"
	"log"

	"tcast"
)

// classes maps a classification to the minimum corroborating detections:
// a tank's seismic/magnetic signature trips far more neighbors than a
// walking soldier's.
var classes = []struct {
	name      string
	threshold int
}{
	{"tank", 48},
	{"car", 24},
	{"soldier", 8},
}

// classify estimates the detection count, then confirms the implied class
// boundary with exact threshold queries (stepping down if the estimate
// was optimistic).
func classify(net *tcast.Network) (string, int, error) {
	estimate, polls := net.EstimateCount(8)
	for _, c := range classes {
		if estimate < 0.75*float64(c.threshold) {
			continue // estimate rules this class out; skip the query
		}
		res, err := net.Query(c.threshold, tcast.ProbABNS())
		if err != nil {
			return "", 0, err
		}
		polls += res.Queries
		if res.Decision {
			return c.name, polls, nil
		}
	}
	return "false alarm", polls, nil
}

func main() {
	const n = 128
	scenarios := []struct {
		label      string
		detections int
	}{
		{"quiet night (2 spurious detections)", 2},
		{"single walker (12 detections)", 12},
		{"vehicle passing (30 detections)", 30},
		{"armored column (70 detections)", 70},
	}
	for i, sc := range scenarios {
		positives := make([]int, sc.detections)
		for j := range positives {
			positives[j] = j * n / sc.detections
		}
		net, err := tcast.NewNetwork(n, positives, tcast.WithSeed(uint64(100+i)))
		if err != nil {
			log.Fatal(err)
		}
		class, polls, err := classify(net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s -> %-11s (%d polls", sc.label, class, polls)
		if class != "false alarm" {
			// A real event: fetch the witnesses for the report.
			witnesses, idQueries, err := net.Identify()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" + %d to identify %d witnesses", idQueries, len(witnesses))
		}
		fmt.Println(")")
	}
	fmt.Printf("\nall on %d-node neighborhoods; a sequential roll call costs ~%d slots every time.\n", n, n)
	fmt.Println("the common case — a quiet network — is answered in a handful of polls;")
	fmt.Println("only detections sitting right on a class boundary (x ≈ t, the paper's")
	fmt.Println("hard case) pay mid-range costs.")
}
