// Packet-level simulation: run tcast over the full radio stack — frames,
// CCA, HACK superposition — instead of the abstract channel, and
// demonstrate why the paper builds on backcast: under external
// interference, pollcast's energy sensing produces false-positive
// "non-empty" bins, while backcast only trusts decoded hardware ACKs
// (Section III-B).
package main

import (
	"fmt"
	"log"

	"tcast/internal/core"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

const (
	n          = 32
	threshold  = 8
	x          = 3 // ground truth: below threshold
	initiator  = 1000
	trials     = 200
	interferon = 0.3 // 30% of slots carry neighboring-region traffic
)

func run(prim pollcast.Primitive, cfg radio.Config, seed uint64) (wrong int, avgQueries float64, avgLatencyMS float64) {
	for i := 0; i < trials; i++ {
		r := rng.New(seed + uint64(i))
		parts := make([]*pollcast.Participant, n)
		for id := range parts {
			parts[id] = &pollcast.Participant{ID: id}
		}
		for _, id := range r.Split(1).Sample(n, x) {
			parts[id].Positive = true
		}
		med := radio.NewMedium(cfg, r.Split(2))
		sess, err := pollcast.NewSession(med, initiator, parts, prim, query.OnePlus)
		if err != nil {
			log.Fatal(err)
		}
		res, err := (core.TwoTBins{}).Run(sess, n, threshold, r.Split(3))
		if err != nil {
			log.Fatal(err)
		}
		if res.Decision != (x >= threshold) {
			wrong++
		}
		avgQueries += float64(res.Queries)
		avgLatencyMS += sess.Elapsed().Seconds() * 1000
	}
	return wrong, avgQueries / trials, avgLatencyMS / trials
}

func main() {
	fmt.Printf("packet-level 2tBins: n=%d, t=%d, true x=%d (threshold NOT met)\n\n", n, threshold, x)

	cleanCfg := radio.Config{}
	wrong, q, ms := run(pollcast.Pollcast, cleanCfg, 100)
	fmt.Printf("pollcast, clean channel:        %3d/%d wrong decisions, %.1f queries, %.1f ms\n", wrong, trials, q, ms)
	wrong, q, ms = run(pollcast.Backcast, cleanCfg, 200)
	fmt.Printf("backcast, clean channel:        %3d/%d wrong decisions, %.1f queries, %.1f ms\n", wrong, trials, q, ms)

	noisyCfg := radio.Config{InterferenceProb: interferon}
	wrong, q, ms = run(pollcast.Pollcast, noisyCfg, 300)
	fmt.Printf("pollcast, %.0f%% interference:    %3d/%d wrong decisions, %.1f queries, %.1f ms  <- CCA false positives\n",
		100*interferon, wrong, trials, q, ms)
	wrong, q, ms = run(pollcast.Backcast, noisyCfg, 400)
	fmt.Printf("backcast, %.0f%% interference:    %3d/%d wrong decisions, %.1f queries, %.1f ms  <- HACK-gated, immune\n",
		100*interferon, wrong, trials, q, ms)

	fmt.Println("\nbackcast concludes 'non-empty' only on a decoded hardware ACK, so")
	fmt.Println("interference cannot inflate the count past the threshold.")
}
