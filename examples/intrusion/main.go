// Intrusion detection: the paper's motivating scenario (Section I). A node
// that locally detects a threat polls its neighborhood to decide whether
// the detection is real (at least t corroborating neighbors) or a false
// positive to be logged and suppressed.
//
// The deployment's positive counts are bimodal — a few spurious detections
// when quiet, many when an intruder is really there — so the example also
// runs the Section VI probabilistic detector, which answers in O(1) polls,
// and compares its cost and accuracy against exact tcast queries.
package main

import (
	"fmt"
	"log"

	"tcast"
	"tcast/internal/dist"
	"tcast/internal/rng"
)

const (
	n         = 128 // neighborhood size
	threshold = 16  // corroborations required to report a real intrusion
	episodes  = 500 // detection episodes over the simulated deployment
)

func main() {
	// Quiet episodes see ~4 spurious positives; real intrusions trip
	// ~48 of the 128 neighbors.
	workload := dist.Bimodal{
		Mu1: 4, Sigma1: 2,
		Mu2: 48, Sigma2: 8,
		WQuiet: 0.8, // most detections are false alarms
		N:      n,
	}
	r := rng.New(99)

	detector, err := tcast.NewDetector(n, workload.Mu1, workload.Sigma1, workload.Mu2, workload.Sigma2, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic detector sized by eq (10): %d probes per episode (independent of n, x, t)\n\n",
		detector.Repeats())

	var (
		exactQueries, probeQueries  int
		exactCorrect, probeCorrect  int
		intrusions, falseAlarms     int
		missedByProbe, falseByProbe int
	)
	for ep := 0; ep < episodes; ep++ {
		x, quiet := workload.SampleLabeled(r.Split(uint64(ep)))
		positives := r.Split(uint64(ep)).Sample(n, x)
		net, err := tcast.NewNetwork(n, positives, tcast.WithSeed(uint64(1000+ep)))
		if err != nil {
			log.Fatal(err)
		}
		if quiet {
			falseAlarms++
		} else {
			intrusions++
		}

		// Exact confirmation with ProbABNS: always correct, adaptive
		// cost.
		res, err := net.Query(threshold, tcast.ProbABNS())
		if err != nil {
			log.Fatal(err)
		}
		exactQueries += res.Queries
		if res.Decision == (x >= threshold) {
			exactCorrect++
		}

		// O(1) probabilistic screening.
		activity, q := detector.Detect(net)
		probeQueries += q
		if activity == !quiet {
			probeCorrect++
		} else if quiet {
			falseByProbe++
		} else {
			missedByProbe++
		}
	}

	fmt.Printf("%d episodes: %d real intrusions, %d false alarms\n\n", episodes, intrusions, falseAlarms)
	fmt.Printf("exact tcast (ProbABNS):     %.1f polls/episode, %d/%d decisions correct\n",
		float64(exactQueries)/episodes, exactCorrect, episodes)
	fmt.Printf("probabilistic detector:     %.1f polls/episode, %d/%d decisions correct\n",
		float64(probeQueries)/episodes, probeCorrect, episodes)
	fmt.Printf("  detector errors: %d intrusions missed, %d false reports\n",
		missedByProbe, falseByProbe)
	fmt.Println("\ntakeaway: when the workload is bimodal, a constant number of probes")
	fmt.Println("screens episodes cheaply; exact tcast remains for the borderline cases.")
}
