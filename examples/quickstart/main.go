// Quickstart: ask a simulated singlehop neighborhood whether at least t
// nodes hold a predicate, and compare what each tcast algorithm pays for
// the answer against the traditional alternatives' intuition.
package main

import (
	"fmt"
	"log"

	"tcast"
)

func main() {
	// A neighborhood of 128 sensor nodes; 20 of them currently detect
	// the event (the initiator does not know this number).
	positives := make([]int, 20)
	for i := range positives {
		positives[i] = i * 6 // arbitrary ground-truth node IDs
	}
	net, err := tcast.NewNetwork(128, positives, tcast.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	const threshold = 16
	const sessions = 200 // average the cost over repeated sessions
	fmt.Printf("network: n=%d, ground truth x=%d, asking x >= %d? (%d sessions each)\n\n",
		net.N(), net.Positives(), threshold, sessions)

	for _, alg := range []tcast.Algorithm{
		tcast.TwoTBins(),
		tcast.ExpIncrease(),
		tcast.ABNS(1),
		tcast.ABNS(2),
		tcast.ProbABNS(),
	} {
		var queries int
		var answer bool
		for s := 0; s < sessions; s++ {
			res, err := net.Query(threshold, alg)
			if err != nil {
				log.Fatal(err)
			}
			queries += res.Queries
			answer = res.Decision
		}
		fmt.Printf("%-22s answer=%v  mean queries=%.1f\n",
			alg.Name(), answer, float64(queries)/sessions)
	}

	// The oracle lower bound: what an initiator that magically knew x
	// would pay on average.
	var oracleQueries int
	for s := 0; s < sessions; s++ {
		res, err := net.QueryOracle(threshold)
		if err != nil {
			log.Fatal(err)
		}
		oracleQueries += res.Queries
	}
	fmt.Printf("%-22s answer=%v  mean queries=%.1f\n",
		"Oracle (lower bound)", true, float64(oracleQueries)/sessions)

	// The same question with a 2+ radio (capture effect): decoded
	// replies identify positives and reduce the cost near x ≈ t.
	net2, err := tcast.NewNetwork(128, positives, tcast.WithSeed(7), tcast.WithTwoPlus())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := net2.Query(threshold, tcast.TwoTBins())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 2+ radio, 2tBins confirmed %d positives by decode and paid %d queries\n",
		res2.Confirmed, res2.Queries)
}
