// "A Line in the Sand", end to end: the paper's motivating intrusion
// pipeline over a deployed field. An event trips the sensors around it; the
// nearest node becomes the initiator and confirms the detection with a
// tcast threshold query over its singlehop neighborhood; confirmed events
// are reported to the basestation over the convergecast tree; unconfirmed
// ones are suppressed locally — the in-network processing win the paper's
// introduction describes.
package main

import (
	"fmt"
	"log"

	"tcast"
	"tcast/internal/field"
	"tcast/internal/rng"
	"tcast/internal/timing"
)

const (
	cols, rows = 10, 10
	spacing    = 10.0 // meters
	radioRange = 25.0 // singlehop neighborhoods of ~20 nodes
	senseRange = 18.0
	threshold  = 8    // corroborating detections for a real event
	falseRate  = 0.02 // per-node spurious detection probability
	events     = 30
)

func main() {
	r := rng.New(2011)
	dep, err := field.Grid(cols, rows, spacing, radioRange)
	if err != nil {
		log.Fatal(err)
	}
	sink := 0 // basestation at the corner
	tree, err := dep.BFSTree(sink)
	if err != nil {
		log.Fatal(err)
	}
	cc := field.Convergecast{LossProb: 0.1, MaxRetries: 3}
	costs := timing.DefaultCosts(dep.N())

	var reported, suppressed, confirmPolls, reportTx int
	for ev := 0; ev < events; ev++ {
		er := r.Split(uint64(ev))
		// Half the episodes are real intrusions, half are quiet periods
		// with only spurious detections.
		real := ev%2 == 0
		var epicenter field.Point
		detectors := map[int]bool{}
		if real {
			epicenter = field.Point{X: er.Float64() * spacing * float64(cols-1), Y: er.Float64() * spacing * float64(rows-1)}
			for _, id := range dep.NodesWithin(epicenter, senseRange) {
				detectors[id] = true
			}
		} else {
			epicenter = field.Point{X: 45, Y: 45}
		}
		for id := 0; id < dep.N(); id++ {
			if er.Bernoulli(falseRate) {
				detectors[id] = true
			}
		}
		if len(detectors) == 0 {
			continue // nothing sensed anywhere
		}

		// The node nearest the (estimated) epicenter initiates tcast
		// over its singlehop neighborhood.
		initiator := dep.Nearest(epicenter)
		hood := dep.Neighbors(initiator)
		positives := make([]int, 0, len(hood))
		for local, id := range hood {
			if detectors[id] {
				positives = append(positives, local)
			}
		}
		net, err := tcast.NewNetwork(len(hood), positives, tcast.WithSeed(uint64(5000+ev)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Query(threshold, tcast.ProbABNS())
		if err != nil {
			log.Fatal(err)
		}
		confirmPolls += res.Queries

		if !res.Decision {
			suppressed++
			continue // false positive: logged locally, never reported
		}
		del := cc.Deliver(tree, initiator, er.Split(1))
		reportTx += del.Transmissions
		if del.Delivered {
			reported++
		}
		if res.Decision != real {
			fmt.Printf("episode %d: confirmed a quiet period — threshold misconfigured?\n", ev)
		}
	}

	fmt.Printf("field: %dx%d nodes, basestation at node %d, %d episodes (half real)\n\n",
		cols, rows, sink, events)
	fmt.Printf("reported intrusions:    %d (delivered over the tree, %d frames total)\n", reported, reportTx)
	fmt.Printf("suppressed false alarms: %d (never left the neighborhood)\n", suppressed)
	fmt.Printf("confirmation cost:       %d polls total (%.1f per episode, ~%.1f ms each)\n",
		confirmPolls, float64(confirmPolls)/events,
		costs.TcastLatency(confirmPolls/events, 2).Seconds()*1000)
	fmt.Println("\nwithout tcast, every spurious detection would ride the tree to the")
	fmt.Println("basestation; with it, only corroborated events pay multihop cost.")
}
