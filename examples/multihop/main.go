// Multihop interference (the paper's §VII future work): a field of
// single-hop regions runs threshold queries concurrently while neighbor
// traffic leaks in as interference. The map below marks each region's
// decision — pollcast's CCA sensing turns neighbor traffic into
// false-positive alarms, backcast's HACK gating does not.
package main

import (
	"fmt"
	"log"
	"strings"

	"tcast/internal/multihop"
	"tcast/internal/pollcast"
)

const (
	width, height = 8, 8
	nodesPerRgn   = 24
	threshold     = 6
	truePositives = 2 // every region is actually below threshold
	load          = 0.8
	coupling      = 0.08
)

func runMap(prim pollcast.Primitive) (string, multihop.Summary) {
	field, err := multihop.NewField(width, height, nodesPerRgn, load)
	if err != nil {
		log.Fatal(err)
	}
	positives := make([]int, field.Regions())
	for i := range positives {
		positives[i] = truePositives
	}
	c := multihop.Campaign{
		Field: field, Primitive: prim, Coupling: coupling,
		Threshold: threshold, Positives: positives,
	}
	results, sum, err := c.Run(2011)
	if err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	for y := 0; y < height; y++ {
		b.WriteString("    ")
		for x := 0; x < width; x++ {
			r := results[y*width+x]
			switch {
			case r.Decision && !r.Truth:
				b.WriteString("X ") // false alarm
			case r.Decision == r.Truth:
				b.WriteString(". ") // correct
			default:
				b.WriteString("o ") // missed (false negative)
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), sum
}

func main() {
	fmt.Printf("%dx%d regions, %d nodes each, t=%d, true x=%d everywhere (below threshold)\n",
		width, height, nodesPerRgn, threshold, truePositives)
	fmt.Printf("neighbor load %.0f%%, coupling %.0f%% — '.' correct, 'X' false alarm\n\n",
		100*load, 100*coupling)

	m, sum := runMap(pollcast.Pollcast)
	fmt.Printf("pollcast (CCA energy sensing): %d/%d regions raise false alarms\n%s\n",
		sum.FalsePositives, sum.Regions, m)
	m, sum = runMap(pollcast.Backcast)
	fmt.Printf("backcast (decoded-HACK gating): %d/%d regions raise false alarms\n%s\n",
		sum.FalsePositives, sum.Regions, m)
	fmt.Println("interference energy cannot forge a hardware acknowledgement, so")
	fmt.Println("backcast keeps singlehop tcast exact inside a noisy multihop field.")
}
