// RFID inventory management: the paper's Section II-C / VII extension
// use-case. A reader asks "are at least t tags of this product class still
// on the shelf?" without inventorying every tag. RCD-style threshold
// querying scales with the answer, not with the tag population — exactly
// the property RFID systems need (Vaidya & Das 2008).
//
// This example compares tcast against the sequential inventory a
// conventional reader would run, across shelf populations from 256 to
// 4096 tags.
package main

import (
	"fmt"
	"log"

	"tcast"
	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/rng"
)

func main() {
	const (
		threshold = 25 // restock when fewer than 25 units remain
		runs      = 200
	)
	r := rng.New(5)

	fmt.Println("restock check: are at least 25 tags of the product class present?")
	fmt.Printf("\n%8s  %8s  %14s  %16s\n", "tags", "in stock", "tcast queries", "sequential slots")
	for _, n := range []int{256, 1024, 4096} {
		for _, stock := range []int{5, 25, 200} {
			var tcastCost, seqCost float64
			for i := 0; i < runs; i++ {
				seedBase := uint64(n*1000000 + stock*1000 + i)
				tags := r.Split(seedBase).Sample(n, stock)

				net, err := tcast.NewNetwork(n, tags, tcast.WithSeed(seedBase))
				if err != nil {
					log.Fatal(err)
				}
				res, err := net.Query(threshold, tcast.ProbABNS())
				if err != nil {
					log.Fatal(err)
				}
				if res.Decision != (stock >= threshold) {
					log.Fatalf("wrong restock decision for n=%d stock=%d", n, stock)
				}
				tcastCost += float64(res.Queries)

				pos := bitset.New(n)
				for _, id := range tags {
					pos.Add(id)
				}
				seq := baseline.Sequential{}.Run(n, threshold, pos, r.Split(seedBase+1))
				seqCost += float64(seq.Slots)
			}
			fmt.Printf("%8d  %8d  %14.1f  %16.1f\n",
				n, stock, tcastCost/runs, seqCost/runs)
		}
	}
	fmt.Println("\ntcast cost tracks the threshold and the answer; sequential")
	fmt.Println("inventory pays for the whole population when stock runs low.")
}
