package tcast_test

import (
	"fmt"

	"tcast"
)

// ExampleNetwork_Query shows the basic threshold question: do at least 4
// of 32 neighbors hold the predicate?
func ExampleNetwork_Query() {
	net, err := tcast.NewNetwork(32, []int{3, 9, 17, 21, 30}, tcast.WithSeed(1))
	if err != nil {
		panic(err)
	}
	res, err := net.Query(4, tcast.TwoTBins())
	if err != nil {
		panic(err)
	}
	fmt.Println("threshold reached:", res.Decision)
	// Output:
	// threshold reached: true
}

// ExampleNetwork_QueryBetween asks whether the positive count lies in an
// interval — the k+ decision-tree reduction to two threshold queries.
func ExampleNetwork_QueryBetween() {
	net, err := tcast.NewNetwork(32, []int{3, 9, 17, 21, 30}, tcast.WithSeed(2))
	if err != nil {
		panic(err)
	}
	res, err := net.QueryBetween(4, 8, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("between 4 and 8 positives:", res.Decision)
	// Output:
	// between 4 and 8 positives: true
}

// ExampleNetwork_Identify retrieves the exact positive set once a
// threshold has fired, via adaptive group testing.
func ExampleNetwork_Identify() {
	net, err := tcast.NewNetwork(32, []int{3, 9, 17}, tcast.WithSeed(3))
	if err != nil {
		panic(err)
	}
	positives, _, err := net.Identify()
	if err != nil {
		panic(err)
	}
	fmt.Println("positive nodes:", positives)
	// Output:
	// positive nodes: [3 9 17]
}

// ExampleNewDetector screens a bimodal deployment in O(1) polls.
func ExampleNewDetector() {
	det, err := tcast.NewDetector(128, 4, 2, 64, 8, 0.05)
	if err != nil {
		panic(err)
	}
	quiet, _ := tcast.NewNetwork(128, []int{5, 77}, tcast.WithSeed(4))
	activity, _ := det.Detect(quiet)
	fmt.Println("activity detected on a quiet network:", activity)
	// Output:
	// activity detected on a quiet network: false
}
