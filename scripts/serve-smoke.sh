#!/usr/bin/env sh
# Serving smoke: boot tcastd on an ephemeral port, fire concurrent
# queries at it, scrape the ops endpoints, then drain it gracefully.
# Exercised by CI (see .github/workflows/ci.yml) and `make serve-smoke`.
set -eu

WORK=$(mktemp -d)
DPID=''
trap '[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/tcastd" ./cmd/tcastd

"$WORK/tcastd" -addr 127.0.0.1:0 -addr-file "$WORK/tcastd.addr" \
	-fields 2 -slo 'minacc=0.99,window=100' &
DPID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$WORK/tcastd.addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: tcastd never published its address" >&2
		exit 1
	fi
	sleep 0.1
done
ADDR=$(cat "$WORK/tcastd.addr")
echo "serve-smoke: tcastd on $ADDR"

# 16 concurrent audited queries, each blocking for its verdict.
seq 1 16 | xargs -P 16 -I{} \
	curl -sf -X POST "http://$ADDR/query?wait=1" \
	-d '{"n":128,"t":16,"x":20,"seed":{},"audit":true}' -o /dev/null
echo "serve-smoke: 16 concurrent queries served"

# One query through the async path: submit, read status, stream verdict.
ID=$(curl -sf -X POST "http://$ADDR/query" -d '{"x":20,"seed":99}' |
	sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
curl -sf "http://$ADDR/query/$ID" > /dev/null
curl -sf -m 10 "http://$ADDR/query/$ID/events" | grep -q 'event: verdict'
echo "serve-smoke: async lifecycle ok ($ID)"

# Ops plane: health, SLO report, field clocks, serving metrics.
curl -sf "http://$ADDR/healthz" | grep -q ok
curl -sf "http://$ADDR/slo" | grep -q '"healthy": true'
curl -sf "http://$ADDR/fields" | grep -q '"served"'
curl -sf "http://$ADDR/metrics" | grep -q 'serve_sessions_total{outcome="correct"} 17'
echo "serve-smoke: ops endpoints ok"

# Graceful drain: SIGTERM, daemon exits 0.
kill -TERM "$DPID"
wait "$DPID"
echo "serve-smoke: drained cleanly"
